// Table 1 reproduction: the datAcron surveillance, weather and contextual
// data sources — format, volume and velocity — regenerated from the
// synthetic equivalents. Paper volumes came from months of archival feeds;
// we generate scaled-down equivalents and report measured volume/velocity
// for each source row, plus the projection to the paper's time spans.

#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/registry.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "geom/geometry.h"
#include "stream/record.h"

using namespace tcmf;

namespace {

/// Approximate serialized size of one position report in a CSV/JSON-ish
/// flat encoding (the paper's feeds are flat files / JSON messages).
size_t ApproxMessageBytes(const stream::Record& r) {
  size_t bytes = 0;
  for (const auto& [name, value] : r.fields()) {
    bytes += name.size() + stream::ValueToString(value).size() + 2;
  }
  return bytes;
}

void Row(const char* type, const char* source, const char* format,
         const std::string& volume, const std::string& velocity) {
  std::printf("%-12s %-28s %-18s %-30s %s\n", type, source, format,
              volume.c_str(), velocity.c_str());
}

}  // namespace

int main() {
  std::printf("=== Table 1: data sources (synthetic equivalents) ===\n\n");
  std::printf("%-12s %-28s %-18s %-30s %s\n", "Type", "Source", "Format",
              "Volume (measured)", "Velocity");
  std::printf("%s\n", std::string(110, '-').c_str());

  Rng rng(1);

  // --- Surveillance: AIS (terrestrial + satellite receivers) ---
  {
    datagen::VesselSimConfig config;
    config.vessel_count = 200;
    config.duration_ms = 2 * kMillisPerHour;
    auto ports = datagen::MakePorts(rng, config.extent, 20);
    datagen::VesselSimulator sim(config, ports, {}, nullptr);
    auto data = sim.Run();
    size_t bytes = 0;
    for (const Position& p : data.stream) {
      bytes += ApproxMessageBytes(stream::PositionToRecord(p));
    }
    double minutes =
        static_cast<double>(config.duration_ms) / kMillisPerMinute;
    Row("Surveillance", "AIS (simulated feed)", "stream of records",
        StrFormat("%zu messages (%.1f MB)", data.stream.size(),
                  bytes / 1e6),
        StrFormat("%.0f messages/min", data.stream.size() / minutes));
  }

  // --- Surveillance: ADS-B / FlightAware-like ---
  {
    datagen::FlightSimConfig config;
    config.flight_count = 120;
    config.departure_spread_ms = 2 * kMillisPerHour;
    datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                                 datagen::DefaultDestinationAirport(),
                                 nullptr);
    auto flights = sim.Run();
    size_t messages = 0, bytes = 0;
    TimeMs t_min = 0, t_max = 0;
    for (const auto& f : flights) {
      messages += f.actual.points.size();
      for (const Position& p : f.actual.points) {
        bytes += ApproxMessageBytes(stream::PositionToRecord(p));
        t_min = std::min(t_min, p.t);
        t_max = std::max(t_max, p.t);
      }
    }
    double minutes = static_cast<double>(t_max - t_min) / kMillisPerMinute;
    Row("Surveillance", "ADS-B (simulated feed)", "stream of records",
        StrFormat("%zu messages (%.1f MB)", messages, bytes / 1e6),
        StrFormat("%.0f messages/min, %.1f kb/s", messages / minutes,
                  bytes * 8 / (minutes * 60) / 1e3));
  }

  // --- Weather: sea state + forecast grids ---
  {
    geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
    datagen::WeatherField weather(rng, extent);
    size_t forecasts = 0, bytes = 0;
    int files = 0;
    for (TimeMs t = 0; t < 24 * kMillisPerHour; t += 3 * kMillisPerHour) {
      auto grid = weather.ForecastGrid(t, 64, 36);
      forecasts += grid.size();
      for (const auto& rec : grid) bytes += ApproxMessageBytes(rec);
      ++files;
    }
    Row("Weather", "Sea state / forecast grids", "grid files",
        StrFormat("%zu forecasts (%.1f MB)", forecasts, bytes / 1e6),
        StrFormat("%d files/day, 1 file / 3 hours", files));
  }

  // --- Contextual: geographical features ---
  {
    geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
    auto regions = datagen::MakeRegions(rng, extent, 400, "natura",
                                        5000, 50000);
    size_t bytes = 0;
    for (const auto& a : regions) {
      bytes += geom::ToWktPolygon(a.shape).size() + a.name.size();
    }
    Row("Contextual", "Geographical (regions)", "WKT shapefiles",
        StrFormat("%zu features (%.2f MB)", regions.size(), bytes / 1e6),
        "static");
  }

  // --- Contextual: port registers ---
  {
    geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
    auto ports = datagen::MakePorts(rng, extent, 500);
    size_t bytes = 0;
    for (const auto& a : ports) {
      bytes += geom::ToWktPolygon(a.shape).size() + a.name.size();
    }
    Row("Contextual", "Port registers", "WKT shapefiles",
        StrFormat("%zu ports (%.2f MB)", ports.size(), bytes / 1e6),
        "static");
  }

  // --- Contextual: vessel + aircraft registers ---
  {
    auto vessels = datagen::MakeVesselRegistry(rng, 5000);
    auto aircraft = datagen::MakeAircraftRegistry(rng, 1500);
    Row("Contextual", "Vessel registers", "flat files",
        StrFormat("%zu distinct ships", vessels.size()), "static");
    Row("Contextual", "Aircraft registers", "flat files",
        StrFormat("%zu distinct aircraft", aircraft.size()), "static");
  }

  // --- Contextual: sector configurations (ECTL-like) ---
  {
    geom::BBox extent{-10.0, 35.0, 5.0, 45.0};
    auto sectors = datagen::MakeSectors(extent, 8, 6);
    Row("Contextual", "Airspace sectors (ECTL-like)", "WKT shapefiles",
        StrFormat("%zu sectors", sectors.size()), "static");
  }

  std::printf(
      "\nnote: paper volumes are archival-period totals (e.g. 81.7M AIS\n"
      "messages over months); rows above are measured on the synthetic\n"
      "equivalents at the same per-minute velocities.\n");
  return 0;
}
