// Figure 5(a) reproduction: RMF* future-location-prediction accuracy over
// look-ahead time frames. Paper setup: complete flights between two
// airports (Barcelona-Madrid), 8 s sampling, up to 8 look-ahead steps
// (~1 min); average 2-D error roughly 1-1.2 km at one minute, error
// distribution skewed toward zero. We evaluate on simulated flights over
// the same airport pair, sweeping the look-ahead horizon, focusing on the
// non-linear phases (takeoff/climb/turns) as the paper does, with the
// plain RMF recurrence as the baseline it improves upon.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "datagen/flight.h"
#include "datagen/weather.h"
#include "geom/geo.h"
#include "prediction/rmf.h"

using namespace tcmf;

namespace {

struct Errors {
  RunningStats per_step[8];  ///< 2-D error per look-ahead step
};

void Evaluate(const Trajectory& flight, Errors* rmf_err, Errors* star_err,
              bool nonlinear_only) {
  prediction::RmfPredictor rmf(3, 12);
  prediction::RmfStarPredictor star;
  const auto& pts = flight.points;
  for (size_t i = 0; i + 8 < pts.size(); ++i) {
    rmf.Observe(pts[i]);
    star.Observe(pts[i]);
    if (i < 12) continue;  // warm-up
    if (nonlinear_only &&
        star.mode() == prediction::MotionMode::kLinear) {
      continue;
    }
    auto p_rmf = rmf.Predict(8);
    auto p_star = star.Predict(8);
    for (int k = 0; k < 8; ++k) {
      const Position& truth = pts[i + 1 + k];
      rmf_err->per_step[k].Add(geom::HaversineM(
          p_rmf[k].loc.lon, p_rmf[k].loc.lat, truth.lon, truth.lat));
      star_err->per_step[k].Add(geom::HaversineM(
          p_star[k].loc.lon, p_star[k].loc.lat, truth.lon, truth.lat));
    }
  }
}

void PrintTable(const char* title, const Errors& rmf_err,
                const Errors& star_err) {
  std::printf("%s\n", title);
  std::printf("%-18s %12s %12s %12s %12s\n", "look-ahead", "RMF mean",
              "RMF* mean", "RMF* stdev", "RMF* median");
  for (int k = 0; k < 8; ++k) {
    std::printf("%6d s (step %d) %10.0f m %10.0f m %10.0f m %10.0f m\n",
                (k + 1) * 8, k + 1, rmf_err.per_step[k].mean(),
                star_err.per_step[k].mean(), star_err.per_step[k].stddev(),
                star_err.per_step[k].median());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 5(a): RMF* prediction accuracy vs look-ahead ===\n");
  std::printf("(flights %s -> %s, 8 s sampling, 8 look-ahead steps)\n\n",
              datagen::DefaultOriginAirport().code.c_str(),
              datagen::DefaultDestinationAirport().code.c_str());

  datagen::FlightSimConfig config;
  config.flight_count = 40;
  config.position_noise_m = 30.0;
  Rng wrng(23);
  datagen::WeatherField weather(wrng, config.extent, 20.0);
  datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                               datagen::DefaultDestinationAirport(),
                               &weather);
  auto flights = sim.Run();

  Errors rmf_all, star_all, rmf_nl, star_nl;
  for (const auto& f : flights) {
    Evaluate(f.actual, &rmf_all, &star_all, /*nonlinear_only=*/false);
    Evaluate(f.actual, &rmf_nl, &star_nl, /*nonlinear_only=*/true);
  }

  PrintTable("all flight phases:", rmf_all, star_all);
  PrintTable("non-linear phases only (the hard case the paper evaluates):",
             rmf_nl, star_nl);

  // Error distribution at the 1-minute horizon (skewness check).
  std::printf("RMF* error distribution at ~1 min look-ahead:\n");
  std::printf("  mean %.0f m, median %.0f m, stdev %.0f m "
              "(median < mean => skewed toward zero, as in the paper)\n",
              star_all.per_step[7].mean(), star_all.per_step[7].median(),
              star_all.per_step[7].stddev());
  std::printf(
      "\npaper: ~1000 m mean, ~500 m stdev at one minute look-ahead, "
      "skewed toward zero;\nRMF alone 'results to very low prediction "
      "accuracy' in these domains.\n");
  return 0;
}
