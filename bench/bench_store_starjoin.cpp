// Section 4.2.5 reproduction: star-join queries with spatio-temporal
// constraints over the knowledge-graph store. Paper: over 269M triples
// from surveillance + weather + contextual sources, the spatio-temporal
// dictionary encoding improves star-join processing time by a factor of
// ~5 versus enforcing the constraints in a post-processing step. We build
// a scaled store (same three source families) and compare the physical
// plans across query selectivities; the shape to match is the ~5x gap
// between post-filtering and encoding pushdown, plus the
// adjacency-indexed plan (per-predicate sorted postings + stats-ordered
// intersection, docs/KG_STORE.md) against the scan baseline.
//
// --smoke: the CI arm (tools/bench_check.py --only store). Builds a
// clustered-entity store — only a small fraction of subjects carry every
// queried predicate, the workload where join ordering matters — times
// scan / vertical / adjacency on the same query, and an st-constrained
// arm comparing the pushdown plans. Rows land in BENCH_store.json with
// a matches-equal invariant and an adjacency-vs-scan ratio gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "rdf/vocab.h"
#include "store/kgstore.h"
#include "synopses/critical_points.h"

using namespace tcmf;

namespace {

struct PlanRow {
  std::string name;
  size_t triples = 0;
  size_t matches = 0;
  size_t scanned = 0;
  double wall_ms = 0.0;  ///< per-query, best-of-reps
};

// Times one plan: repeats until ~100 ms of work (min 3 reps) and reports
// the best per-query wall so scheduler noise shrinks the gate variance.
PlanRow TimePlan(const store::KnowledgeStore& kg,
                 const store::StarQuery& query, store::StarPlan plan,
                 const std::string& name) {
  PlanRow row;
  row.name = name;
  row.triples = kg.size();
  store::StarQueryMetrics first;
  row.matches = kg.RunStar(query, plan, &first).size();
  row.scanned = first.triples_scanned;
  row.wall_ms = first.wall_ms;
  const int reps = std::clamp(
      first.wall_ms > 0 ? static_cast<int>(100.0 / first.wall_ms) : 100, 3,
      200);
  for (int i = 0; i < reps; ++i) {
    store::StarQueryMetrics m;
    kg.RunStar(query, plan, &m);
    row.wall_ms = std::min(row.wall_ms, m.wall_ms);
  }
  return row;
}

// Clustered-entity store: every node is a position node (hasStCell,
// asWKT, hasTimestamp), but only 1-in-`cluster` nodes carry the
// hasSpeed/hasHeading attributes the star query asks for. The scan
// baseline must still visit every triple; the adjacency plan drives
// from the rare predicate's postings.
void BuildClusteredStore(store::KnowledgeStore* kg, size_t nodes,
                         size_t cluster) {
  Rng rng(21);
  for (size_t i = 0; i < nodes; ++i) {
    rdf::Term node = rdf::Iri("http://tcmf/node/" + std::to_string(i));
    kg->AddPositionNode(node, rng.Uniform(-6.0, 10.0),
                        rng.Uniform(35.0, 44.0),
                        static_cast<TimeMs>(rng.Uniform(
                            0.0, 6.0 * kMillisPerHour)));
    if (i % cluster == 0) {
      kg->Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
               rdf::DoubleLiteral(rng.Uniform(0.0, 12.0))});
      kg->Add({node, rdf::Iri(rdf::vocab::kHasHeading),
               rdf::DoubleLiteral(rng.Uniform(0.0, 360.0))});
    }
  }
  kg->Compile();
}

std::vector<PlanRow> RunSmokeArms(bool smoke) {
  std::printf("--- gated arms: clustered-entity star join ---\n");
  const geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
  geom::StCellEncoder encoder(extent, 10, 0, 15 * kMillisPerMinute);
  store::KnowledgeStore kg(encoder, 16);
  const size_t nodes = smoke ? 30000 : 60000;
  BuildClusteredStore(&kg, nodes, 16);

  store::StarQuery query;
  query.predicate_ids = {
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasHeading)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kAsWKT))};

  std::vector<PlanRow> rows;
  rows.push_back(TimePlan(kg, query, store::StarPlan::kTriplesTableScan,
                          "store/starjoin/clustered/scan"));
  rows.push_back(TimePlan(kg, query, store::StarPlan::kVerticalPartition,
                          "store/starjoin/clustered/vertical"));
  rows.push_back(TimePlan(kg, query, store::StarPlan::kAdjacencyIndex,
                          "store/starjoin/clustered/adjacency"));

  // st-constrained arm: the pushdown plans over the same store.
  store::StarQuery st = query;
  st.has_st_constraint = true;
  st.st_box.bounds = {-2.0, 37.0, 4.0, 41.0};
  st.st_box.t_begin = kMillisPerHour;
  st.st_box.t_end = 4 * kMillisPerHour;
  rows.push_back(TimePlan(kg, st, store::StarPlan::kAdjacencyIndex,
                          "store/starjoin/st/adjacency"));
  rows.push_back(TimePlan(kg, st,
                          store::StarPlan::kAdjacencyIndexPushdown,
                          "store/starjoin/st/adjacency_pushdown"));
  rows.push_back(TimePlan(kg, st,
                          store::StarPlan::kVerticalPartitionPushdown,
                          "store/starjoin/st/vertical_pushdown"));
  for (const PlanRow& r : rows) {
    std::printf("%-44s %8zu rows %12zu scanned %10.3f ms\n", r.name.c_str(),
                r.matches, r.scanned, r.wall_ms);
  }
  std::printf("\n");
  return rows;
}

void WriteJson(const std::vector<PlanRow>& rows) {
  std::FILE* f = std::fopen("BENCH_store.json", "w");
  if (!f) return;
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const PlanRow& r = rows[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"hw_threads\": %u, "
                 "\"triples\": %zu, \"matches\": %zu, \"scanned\": %zu, "
                 "\"wall_ms\": %.4f}%s\n",
                 r.name.c_str(), hw, r.triples, r.matches, r.scanned,
                 r.wall_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote BENCH_store.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  WriteJson(RunSmokeArms(smoke));
  if (smoke) return 0;  // CI smoke: the gated arms only

  std::printf("=== Section 4.2.5: spatio-temporal star joins ===\n\n");

  const geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
  geom::StCellEncoder encoder(extent, 10, 0, 15 * kMillisPerMinute);
  store::KnowledgeStore kg(encoder, 16);

  // --- Surveillance nodes ---
  datagen::VesselSimConfig config;
  config.vessel_count = 150;
  config.duration_ms = 6 * kMillisPerHour;
  config.report_interval_ms = 10000;
  Rng rng(13);
  auto ports = datagen::MakePorts(rng, extent, 15);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();
  size_t nodes = 0;
  for (const Position& p : data.stream) {
    rdf::Term node =
        rdf::Iri("http://tcmf/node/" + std::to_string(p.entity_id) + "/" +
                 std::to_string(p.t));
    kg.AddPositionNode(node, p.lon, p.lat, p.t);
    kg.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
            rdf::DoubleLiteral(p.speed_mps)});
    kg.Add({node, rdf::Iri(rdf::vocab::kHasHeading),
            rdf::DoubleLiteral(p.heading_deg)});
    ++nodes;
  }

  // --- Weather nodes ---
  datagen::WeatherField weather(rng, extent);
  size_t weather_nodes = 0;
  for (TimeMs t = 0; t < config.duration_ms; t += 3 * kMillisPerHour) {
    for (const auto& rec : weather.ForecastGrid(t, 24, 16)) {
      rdf::Term node = rdf::Iri(
          "http://tcmf/weather/" + std::to_string(t) + "/" +
          std::to_string(weather_nodes));
      kg.AddPositionNode(node, rec.GetNumeric("lon").value(),
                         rec.GetNumeric("lat").value(), t);
      kg.Add({node, rdf::Iri(rdf::vocab::kHasWindSpeed),
              rdf::DoubleLiteral(rec.GetNumeric("severity").value() * 25)});
      ++weather_nodes;
    }
  }
  kg.Compile();
  std::printf("store: %zu triples (%zu surveillance + %zu weather nodes), "
              "%zu partitions\n\n",
              kg.size(), nodes, weather_nodes, kg.partitions());

  store::StarQuery query;
  query.predicate_ids = {
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasHeading)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kAsWKT))};
  query.has_st_constraint = true;

  kg.BuildPropertyTable(query.predicate_ids);
  std::printf("star query: ?n hasSpeed ?s . ?n hasHeading ?h . "
              "?n hasTimestamp ?t . ?n asWKT ?w  + st-box filter\n\n");
  std::printf("%-12s %-36s %8s %12s %12s %10s %10s\n", "selectivity",
              "plan", "rows", "scanned", "st-filters", "ms", "speedup");

  for (double frac : {0.1, 0.2, 0.4}) {
    query.st_box.bounds = {0.0, 37.0, 0.0 + 16.0 * frac, 37.0 + 9.0 * frac};
    query.st_box.t_begin = kMillisPerHour;
    query.st_box.t_end =
        kMillisPerHour +
        static_cast<TimeMs>(config.duration_ms * frac);

    double base_ms = 0.0;
    for (store::StarPlan plan :
         {store::StarPlan::kTriplesTableScan,
          store::StarPlan::kVerticalPartition,
          store::StarPlan::kPropertyTable,
          store::StarPlan::kAdjacencyIndex,
          store::StarPlan::kVerticalPartitionPushdown,
          store::StarPlan::kPropertyTablePushdown,
          store::StarPlan::kAdjacencyIndexPushdown}) {
      // Best of 3 runs to stabilize timings.
      store::StarQueryMetrics best;
      best.wall_ms = 1e18;
      size_t rows = 0;
      for (int run = 0; run < 3; ++run) {
        store::StarQueryMetrics m;
        rows = kg.RunStar(query, plan, &m).size();
        if (m.wall_ms < best.wall_ms) best = m;
      }
      if (plan == store::StarPlan::kVerticalPartition) {
        base_ms = best.wall_ms;
      }
      bool is_pushdown =
          plan == store::StarPlan::kVerticalPartitionPushdown ||
          plan == store::StarPlan::kPropertyTablePushdown ||
          plan == store::StarPlan::kAdjacencyIndexPushdown;
      double speedup =
          is_pushdown && best.wall_ms > 0 ? base_ms / best.wall_ms : 0.0;
      std::printf("%-12.2f %-36s %8zu %12zu %12zu %10.2f %10s\n", frac,
                  store::StarPlanName(plan), rows, best.triples_scanned,
                  best.st_filter_evaluations, best.wall_ms,
                  speedup > 0 ? StrFormat("%.1fx", speedup).c_str() : "-");
    }
    std::printf("\n");
  }
  std::printf("paper: ~5x faster star joins with the spatio-temporal\n"
              "dictionary encoding vs post-processing the constraints.\n");
  return 0;
}
