// Section 4.2.5 reproduction: star-join queries with spatio-temporal
// constraints over the knowledge-graph store. Paper: over 269M triples
// from surveillance + weather + contextual sources, the spatio-temporal
// dictionary encoding improves star-join processing time by a factor of
// ~5 versus enforcing the constraints in a post-processing step. We build
// a scaled store (same three source families) and compare the physical
// plans across query selectivities; the shape to match is the ~5x gap
// between post-filtering and encoding pushdown.

#include <cstdio>

#include "common/strings.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "rdf/vocab.h"
#include "store/kgstore.h"
#include "synopses/critical_points.h"

using namespace tcmf;

int main() {
  std::printf("=== Section 4.2.5: spatio-temporal star joins ===\n\n");

  const geom::BBox extent{-6.0, 35.0, 10.0, 44.0};
  geom::StCellEncoder encoder(extent, 10, 0, 15 * kMillisPerMinute);
  store::KnowledgeStore kg(encoder, 16);

  // --- Surveillance nodes ---
  datagen::VesselSimConfig config;
  config.vessel_count = 150;
  config.duration_ms = 6 * kMillisPerHour;
  config.report_interval_ms = 10000;
  Rng rng(13);
  auto ports = datagen::MakePorts(rng, extent, 15);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();
  size_t nodes = 0;
  for (const Position& p : data.stream) {
    rdf::Term node =
        rdf::Iri("http://tcmf/node/" + std::to_string(p.entity_id) + "/" +
                 std::to_string(p.t));
    kg.AddPositionNode(node, p.lon, p.lat, p.t);
    kg.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
            rdf::DoubleLiteral(p.speed_mps)});
    kg.Add({node, rdf::Iri(rdf::vocab::kHasHeading),
            rdf::DoubleLiteral(p.heading_deg)});
    ++nodes;
  }

  // --- Weather nodes ---
  datagen::WeatherField weather(rng, extent);
  size_t weather_nodes = 0;
  for (TimeMs t = 0; t < config.duration_ms; t += 3 * kMillisPerHour) {
    for (const auto& rec : weather.ForecastGrid(t, 24, 16)) {
      rdf::Term node = rdf::Iri(
          "http://tcmf/weather/" + std::to_string(t) + "/" +
          std::to_string(weather_nodes));
      kg.AddPositionNode(node, rec.GetNumeric("lon").value(),
                         rec.GetNumeric("lat").value(), t);
      kg.Add({node, rdf::Iri(rdf::vocab::kHasWindSpeed),
              rdf::DoubleLiteral(rec.GetNumeric("severity").value() * 25)});
      ++weather_nodes;
    }
  }
  kg.Compile();
  std::printf("store: %zu triples (%zu surveillance + %zu weather nodes), "
              "%zu partitions\n\n",
              kg.size(), nodes, weather_nodes, kg.partitions());

  store::StarQuery query;
  query.predicate_ids = {
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasHeading)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kAsWKT))};
  query.has_st_constraint = true;

  kg.BuildPropertyTable(query.predicate_ids);
  std::printf("star query: ?n hasSpeed ?s . ?n hasHeading ?h . "
              "?n hasTimestamp ?t . ?n asWKT ?w  + st-box filter\n\n");
  std::printf("%-12s %-36s %8s %12s %12s %10s %10s\n", "selectivity",
              "plan", "rows", "scanned", "st-filters", "ms", "speedup");

  for (double frac : {0.1, 0.2, 0.4}) {
    query.st_box.bounds = {0.0, 37.0, 0.0 + 16.0 * frac, 37.0 + 9.0 * frac};
    query.st_box.t_begin = kMillisPerHour;
    query.st_box.t_end =
        kMillisPerHour +
        static_cast<TimeMs>(config.duration_ms * frac);

    double base_ms = 0.0;
    for (store::StarPlan plan :
         {store::StarPlan::kTriplesTableScan,
          store::StarPlan::kVerticalPartition,
          store::StarPlan::kPropertyTable,
          store::StarPlan::kVerticalPartitionPushdown,
          store::StarPlan::kPropertyTablePushdown}) {
      // Best of 3 runs to stabilize timings.
      store::StarQueryMetrics best;
      best.wall_ms = 1e18;
      size_t rows = 0;
      for (int run = 0; run < 3; ++run) {
        store::StarQueryMetrics m;
        rows = kg.RunStar(query, plan, &m).size();
        if (m.wall_ms < best.wall_ms) best = m;
      }
      if (plan == store::StarPlan::kVerticalPartition) {
        base_ms = best.wall_ms;
      }
      bool is_pushdown =
          plan == store::StarPlan::kVerticalPartitionPushdown ||
          plan == store::StarPlan::kPropertyTablePushdown;
      double speedup =
          is_pushdown && best.wall_ms > 0 ? base_ms / best.wall_ms : 0.0;
      std::printf("%-12.2f %-36s %8zu %12zu %12zu %10.2f %10s\n", frac,
                  store::StarPlanName(plan), rows, best.triples_scanned,
                  best.st_filter_evaluations, best.wall_ms,
                  speedup > 0 ? StrFormat("%.1fx", speedup).c_str() : "-");
    }
    std::printf("\n");
  }
  std::printf("paper: ~5x faster star joins with the spatio-temporal\n"
              "dictionary encoding vs post-processing the constraints.\n");
  return 0;
}
