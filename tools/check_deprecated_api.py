#!/usr/bin/env python3
"""Lint: no positional stage APIs — declared OR called.

PR 5 replaced every positional ``(capacity, name)`` operator tail with
the unified ``stream::StageOptions`` struct, and PR 10 deleted the
``[[deprecated]]`` delegate overloads outright: StageOptions is now the
only spelling. This script enforces both halves without a configured
build tree, so it can run first (and locally) in seconds:

- **no declarations**: any ``[[deprecated`` attribute under ``src/`` is
  an error — the positional shims must not be reintroduced;
- **no call sites**: first-party code (src/, tests/, bench/, examples/)
  must not pass positional capacity tails to the stage APIs (a guard
  against resurrecting the overloads together with their callers).

CI still configures with ``-DTCMF_WERROR_DEPRECATED=ON``; with zero
``[[deprecated]]`` declarations left that flag is a no-op backstop.

What it flags, per call to a stage API name
(Flow operators, FusedChain::Emit, and the insitu/synopses/mlog stage
helpers):

- a *bare integer* (or ``kDefaultCapacity``-style constant) passed as
  the **last** top-level argument — the positional ``capacity`` tail
  (``.Map<Out>(fn, 256)``, ``Emit(512)``, ``SynopsesStage(f, c, 2,
  256)``);
- a bare integer immediately **followed by a string literal** — the
  positional ``(capacity, name)`` pair (``.Map<Out>(fn, 256, "x")``).

Bare integers in *non-capacity* positions stay legal: the parallelism
slot of ``KeyedProcessParallel``/``SynopsesStage`` (argument index 2)
is exempted outright — with flush/options defaulted it can land as the
final argument of a perfectly modern call. StageOptions call sites
spell capacity as ``{.capacity = 256}`` — inside braces, not a
top-level argument — and never match either.

Comments and the contents of string literals are stripped before
matching, so doc examples showing the old spelling don't trip it.

Usage:
    tools/check_deprecated_api.py [--root REPO_ROOT] [-v]

Exit status 1 when any offending call site is found.
"""

import argparse
import os
import re
import sys

# Directories holding first-party sources, relative to the repo root.
SCAN_DIRS = ["src", "tests", "bench", "examples"]
EXTENSIONS = {".h", ".hpp", ".cc", ".cpp"}

# Stage APIs that grew a StageOptions overload in PR 5. Every name is
# matched as `Name` or `Name<...>` immediately followed by `(`.
API_NAMES = [
    "FromVector",
    "FromGenerator",
    "FromBatchGenerator",
    "Map",
    "FlatMap",
    "Filter",
    "KeyedProcess",
    "KeyedProcessParallel",
    "KeyedTumblingWindow",
    "Emit",
    "CleaningStage",
    "AreaEventStage",
    "SynopsesStage",
    "LogSink",
]

CALL_RE = re.compile(
    r"\b(" + "|".join(API_NAMES) + r")\s*(<[^;(){}]*>)?\s*\(")

# APIs with a legitimate positional size_t that is NOT a capacity:
# name -> zero-based argument index to exempt (the parallelism slot).
PARALLELISM_ARG = {
    "KeyedProcessParallel": 2,
    "SynopsesStage": 2,
}

# A top-level argument that is a positional capacity: a bare integer
# literal or a kCamelCase constant (kDefaultCapacity and friends).
BARE_INT_RE = re.compile(r"^(?:\d+[uUlL]*|k[A-Z]\w*)$")
STRING_ARG_RE = re.compile(r'^"')

# The attribute itself: matched against comment-stripped source under
# src/ only (docs and tests may mention it in prose; first-party
# headers may not declare it).
DEPRECATED_ATTR_RE = re.compile(r"\[\[\s*deprecated")


def find_deprecated_declarations(text):
    """Line numbers of ``[[deprecated`` attributes (comments stripped)."""
    clean = strip_comments_and_strings(text)
    return [clean.count("\n", 0, m.start()) + 1
            for m in DEPRECATED_ATTR_RE.finditer(clean)]


def strip_comments_and_strings(text):
    """Remove comments; collapse string/char literals to `""`/`''`.

    Keeps the literal's quotes (so "is this arg a string literal?"
    still works) while dropping contents that could confuse the
    paren/brace scanner.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j  # keep the newline for line numbers
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            # Preserve newlines inside the comment for line numbers.
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                elif text[j] == quote:
                    j += 1
                    break
                else:
                    j += 1
            out.append(quote + quote)
            out.append("\n" * text.count("\n", i, j))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def split_call_args(text, open_paren):
    """Split the balanced argument list starting at `(` into top-level
    argument strings. Returns (args, end_index) or (None, open_paren)
    when the parens never balance (macro soup — skip it)."""
    depth = 0
    args = []
    current = []
    i = open_paren
    n = len(text)
    while i < n:
        c = text[i]
        if c in "([{":
            depth += 1
            if depth > 1:
                current.append(c)
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args, i
            current.append(c)
        elif c == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(c)
        i += 1
    return None, open_paren


def find_offences(path, text):
    clean = strip_comments_and_strings(text)
    offences = []
    for m in CALL_RE.finditer(clean):
        name = m.group(1)
        args, _ = split_call_args(clean, m.end() - 1)
        if args is None or not args or args == [""]:
            continue
        line = clean.count("\n", 0, m.start()) + 1
        for idx, arg in enumerate(args):
            if not BARE_INT_RE.match(arg):
                continue
            if PARALLELISM_ARG.get(name) == idx:
                continue  # parallelism, not capacity
            is_last = idx == len(args) - 1
            followed_by_string = (idx + 1 < len(args) and
                                  STRING_ARG_RE.match(args[idx + 1]))
            if is_last or followed_by_string:
                offences.append(
                    (line, name,
                     f"positional capacity argument '{arg}'"
                     + (" followed by a name string"
                        if followed_by_string else " as final argument")))
                break
    return offences


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root to scan")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every file scanned")
    args = parser.parse_args()

    offences = []
    scanned = 0
    for rel in SCAN_DIRS:
        base = os.path.join(args.root, rel)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for fname in sorted(files):
                if os.path.splitext(fname)[1] not in EXTENSIONS:
                    continue
                path = os.path.join(dirpath, fname)
                scanned += 1
                if args.verbose:
                    print(f"scan {os.path.relpath(path, args.root)}")
                with open(path, encoding="utf-8") as f:
                    text = f.read()
                for line, name, why in find_offences(path, text):
                    offences.append(
                        f"{os.path.relpath(path, args.root)}:{line}: "
                        f"{name}(...): {why} — use the StageOptions "
                        f"overload ({{.name = ..., .capacity = ...}})")
                if rel == "src":
                    for line in find_deprecated_declarations(text):
                        offences.append(
                            f"{os.path.relpath(path, args.root)}:{line}: "
                            f"[[deprecated]] declaration — the positional "
                            f"shims were deleted in PR 10; StageOptions is "
                            f"the only spelling, do not reintroduce them")

    print(f"check_deprecated_api: scanned {scanned} files under "
          f"{', '.join(SCAN_DIRS)}")
    if offences:
        print("positional stage-API offences found:", file=sys.stderr)
        for off in offences:
            print(f"  - {off}", file=sys.stderr)
        print("(fix the spelling rather than the lint; StageOptions is "
              "the only stage-configuration surface)",
              file=sys.stderr)
        return 1
    print("check_deprecated_api OK — no positional stage-API uses, no "
          "[[deprecated]] declarations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
