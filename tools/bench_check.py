#!/usr/bin/env python3
"""Bench regression check for the batched stream transport.

Runs ``bench_micro --smoke`` (the reduced-size batched-transport
comparison; the google-benchmark suite is skipped), loads the
``BENCH_micro.json`` it writes, and compares every row against the
committed baseline in ``bench/baselines/BENCH_micro.json`` with a
multiplicative tolerance. CI machines are noisy and heterogeneous, so
the default tolerance is generous (3x): the check catches order-of-
magnitude regressions — a batch path silently degrading to per-record
locking — not few-percent drift.

Also asserts the PR 3 acceptance invariant directly on the fresh
measurement: the channel-transfer row at batch 64 must be at least
``--min-batch-speedup`` (default 3x) faster than record-at-a-time.

Exit status is non-zero on any failure, so it can gate CI.

Usage:
    tools/bench_check.py [--bench build/bench/bench_micro]
                         [--baseline bench/baselines/BENCH_micro.json]
                         [--tolerance 3.0] [--min-batch-speedup 3.0]
                         [--no-run]   # reuse an existing BENCH_micro.json
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    return {row["name"]: row for row in rows}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        default=os.path.join(REPO_ROOT, "build", "bench", "bench_micro"),
        help="path to the bench_micro binary",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "bench", "baselines",
                             "BENCH_micro.json"),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance", type=float, default=3.0,
        help="fail when measured < baseline / tolerance (default 3.0)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=3.0,
        help="required channel-transfer speedup of batch64 over batch1",
    )
    parser.add_argument(
        "--no-run", action="store_true",
        help="skip running the bench; check an existing BENCH_micro.json "
             "next to the binary",
    )
    args = parser.parse_args()

    bench_dir = os.path.dirname(os.path.abspath(args.bench))
    result_path = os.path.join(bench_dir, "BENCH_micro.json")

    if not args.no_run:
        if not os.path.exists(args.bench):
            print(f"bench binary not found: {args.bench}", file=sys.stderr)
            return 2
        print(f"running: {args.bench} --smoke (cwd={bench_dir})")
        proc = subprocess.run([os.path.abspath(args.bench), "--smoke"],
                              cwd=bench_dir)
        if proc.returncode != 0:
            print(f"bench_micro exited with {proc.returncode}",
                  file=sys.stderr)
            return 2

    if not os.path.exists(result_path):
        print(f"missing bench output: {result_path}", file=sys.stderr)
        return 2
    measured = load_rows(result_path)
    baseline = load_rows(args.baseline)

    failures = []
    print(f"\n{'row':<30} {'measured':>14} {'baseline':>14} {'ratio':>8}")
    for name, base_row in sorted(baseline.items()):
        base = base_row["records_per_s"]
        if name not in measured:
            failures.append(f"row missing from bench output: {name}")
            print(f"{name:<30} {'MISSING':>14} {base:>14.0f}")
            continue
        got = measured[name]["records_per_s"]
        ratio = got / base if base else float("inf")
        verdict = ""
        if got < base / args.tolerance:
            failures.append(
                f"{name}: {got:.0f} rec/s < baseline {base:.0f} / "
                f"{args.tolerance:g} (ratio {ratio:.2f})")
            verdict = "  << REGRESSION"
        print(f"{name:<30} {got:>14.0f} {base:>14.0f} {ratio:>7.2f}x"
              f"{verdict}")

    # Acceptance invariant: batching must actually amortize the lock.
    b1 = measured.get("channel_transfer/batch1")
    b64 = measured.get("channel_transfer/batch64")
    if b1 and b64:
        speedup = b64["records_per_s"] / b1["records_per_s"]
        ok = speedup >= args.min_batch_speedup
        print(f"\nchannel transfer batch64 vs batch1: {speedup:.1f}x "
              f"(required >= {args.min_batch_speedup:g}x)"
              f"{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                f"batch64 speedup {speedup:.2f}x < "
                f"{args.min_batch_speedup:g}x")
    else:
        failures.append("channel_transfer batch1/batch64 rows missing")

    if failures:
        print("\nbench_check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench_check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
