#!/usr/bin/env python3
"""Bench regression check for the batched + adaptive stream transport.

Runs ``bench_micro --smoke`` (the reduced-size batched-transport
comparison; the google-benchmark suite is skipped), loads the
``BENCH_micro.json`` it writes, and gates it three ways:

1. **Absolute floor** — every baseline row must come in above
   ``baseline / tolerance``. CI machines are noisy and heterogeneous,
   so the default tolerance is generous (3x): this catches
   order-of-magnitude regressions (a batch path silently degrading to
   per-record locking), not few-percent drift.

2. **Relative gates** — the *ratios between rows of the same run* are
   machine-speed-invariant, so they are held to a much tighter bound
   (``--ratio-tolerance``, default 1.8x) against the same ratio in the
   committed baseline. A slow runner scales every row down together and
   leaves the ratios alone; losing batching on one edge shows up
   immediately. Gated pairs:

   - ``channel_transfer/batch64  / channel_transfer/batch1``
   - ``pipeline/batched64        / pipeline/record_at_a_time``
   - ``pipeline/fused_batched64  / pipeline/batched64``
   - ``pipeline/adaptive         / best static pipeline row``

3. **Tuner-state gates** — read from the per-row tuner fields that
   bench_micro copies out of the adaptive source edge
   (``stream::BatchTuner::Snapshot``, the same state ``ReportJson``
   publishes as ``tuner_*``):

   - ``pipeline/adaptive`` must actually have tuned (samples > 0,
     adjust_up > 0, target within [min_batch, batch_cap]) and reach at
     least ``--min-adaptive-ratio`` of the best static max_batch row
     from the same run (default 0.85; measured ~0.92 on an idle
     machine — see docs/STREAM_TUNING.md).
   - ``pipeline/adaptive_slow_phase`` must record back-off
     (adjust_down > 0): the consumer turns slow halfway through and a
     controller that never shrinks its target is broken.

4. **Capacity-tuner gates** — the elastic-capacity sweep
   (``pipeline_capacity/*``, a bursty-stall consumer where the channel
   bound matters) must show the adaptive controller earning its keep:

   - ``pipeline_capacity/adaptive`` must reach at least
     ``--min-capacity-ratio`` of the best *static* capacity row from
     the same run (default 0.85 — same contract as the batch tuner:
     near-best-static without hand-picking the bound).
   - It must actually have resized (capacity_resize_up > 0) and its
     final bound must sit inside [capacity_min, capacity_max].

5. **Latency-budget gates** — the staging-delay rows
   (``pipeline_latency/*``, a trickling source against a large
   max_batch so flush timing dominates):

   - ``pipeline_latency/budget50`` p99 staging delay must stay within
     ``--budget-tolerance`` x its declared budget_ms (default 1.3x:
     the budget is enforced by a polling linger loop, so scheduler
     jitter adds up to one poll interval on top).
   - The unbudgeted linger row must be *slower* than the budgeted row
     (sanity: the budget visibly tightened the tail; if linger200's
     p99 is not above budget50's, the rows measure nothing).

Also asserts the PR 3 acceptance invariant directly on the fresh
measurement: the channel-transfer row at batch 64 must be at least
``--min-batch-speedup`` (default 3x) faster than record-at-a-time.

6. **Partitioned-log gates** — runs ``bench_mlog --smoke`` and checks
   the partition-sweep rows in ``BENCH_mlog.json`` (the skewed
   million-key vessel workload, one producer thread per partition):

   - rows for partitions {1, 4, 16} must all be present, tagged with
     ``workload == skewed_mkeys``, and report non-zero append and
     group-replay throughput;
   - the partitions=4 aggregate append rate must reach
     ``--min-partition-speedup`` (default 2x) over partitions=1 — but
     only when the machine can physically parallelize: the gate reads
     the row's ``hw_threads`` and relaxes to a no-collapse bound
     (>= 0.35x) below 4 hardware threads, since a CPU-bound append
     cannot scale past the core count.

7. **Scenario SLO gates** — runs ``bench_scenario --smoke`` (the
   open-loop city-scale harness) and checks ``BENCH_scenario.json``:

   - all three arms (``scenario/steady``, ``scenario/diurnal``,
     ``scenario/chaos``) present, with a clean error field and
     exactly-once delivery: ``consumed == appended``,
     ``gaps == dups == 0`` — on the chaos arm this proves the
     GroupCursor restarts resumed at the committed watermark;
   - steady-state end-to-end p99 within ``budget_ms x
     --budget-tolerance`` (the same 1.3x contract as the PR 5 staging
     gates; hw-aware: doubled below 4 hardware threads, where the
     producer/consumer/chaos threads oversubscribe the machine);
   - the chaos arm must *show* its injected faults: ``restarts >= 1``
     and ``sync_stalls >= 1`` (the hooks actually fired), a p999 spike
     of at least ``--min-chaos-spike`` x the injected per-append stall
     (the open-loop schedule makes the producer wedge visible instead
     of silently slowing the load), a non-zero measured disruption,
     and ``recovery_ms <= --max-recovery-ms`` (doubled below 4
     hardware threads).

8. **Spatial-index gates** — runs ``bench_link_discovery --smoke``
   and checks the grid-vs-rtree sweep rows in
   ``BENCH_linkdiscovery.json`` (250k points, radius queries at stored
   points, one clustered and one uniform distribution):

   - rows for {clustered, uniform} x {grid, rtree} must all be
     present with non-zero throughput;
   - per distribution, ``matches`` must be EQUAL between grid and
     rtree — the same differential invariant the oracle test suite
     proves, re-asserted on the bench workload;
   - on the clustered (hub-skewed) arm the rtree must beat the grid
     by ``--min-clustered-speedup`` (default 2.0; measured ~10x —
     hot cells hold thousands of points and the grid scans them
     all). Relaxed to 1.4x below 4 hardware threads;
   - on the uniform arm the grid/rtree ratio must stay within
     ``--max-uniform-ratio`` (default 1.3: the rtree may not give
     up more than 30% where the grid is at its best; measured — the
     rtree actually *wins* at the benched ~61 points/cell density).
     Relaxed x1.5 below 4 hardware threads.

9. **Triplestore star-join gates** — runs ``bench_store_starjoin
   --smoke`` and checks the plan-comparison rows in
   ``BENCH_store.json`` (a clustered-entity graph where 1-in-16
   position nodes carry the full star of predicates):

   - the clustered trio (``store/starjoin/clustered/{scan, vertical,
     adjacency}``) and the spatio-temporal trio
     (``store/starjoin/st/{adjacency, adjacency_pushdown,
     vertical_pushdown}``) must all be present with non-zero
     ``matches``;
   - within each trio, ``matches`` must be EQUAL across every row —
     the same differential invariant tests/kg_equiv_test.cc proves,
     re-asserted on the bench workload (a fast plan that returns
     different bindings is wrong, not fast);
   - the adjacency-index plan must beat the full table scan by
     ``--min-adjacency-speedup`` (default 5.0; measured ~80x — the
     scan touches every triple of every partition per query while
     the merge join only walks the three predicates' postings).
     Relaxed to 2.0 below 4 hardware threads, where the scan plan's
     worker pool cannot parallelize.

10. **RDF enrichment gates** — runs ``bench_rdf_generation --smoke``
    and checks the batch-vs-fused rows in ``BENCH_rdf.json``:

    - ``rdf/generation/batch`` (tight TripleGenerator::Run loop) and
      ``rdf/generation/fused`` (FromVector -> TripleGeneratorStage ->
      KgStoreSink pipeline) must both be present with non-zero
      throughput;
    - ``triples`` must be EQUAL between the two rows: the fused
      path's StoreCounters must account for exactly the triples the
      batch path emits (this is the ReportJson counter-plumbing
      invariant, checked end to end);
    - the fused row must reach ``--min-fused-ratio`` of the batch
      row's records_per_s (default 0.25; measured ~0.53 — the
      pipeline adds channel hops and store interning, but must not
      collapse by an order of magnitude). Relaxed to 0.10 below 4
      hardware threads, where the stage threads oversubscribe.

11. **Keyed-fusion gates** — the keyed-terminal fusion rows in
    ``BENCH_micro.json`` (same ``bench_micro --smoke`` run as gates
    1-5):

    - ``keyed_fusion/fused_keyed`` (stateless prefix running inside
      the partition router) must beat ``keyed_fusion/two_hop`` (prefix
      Emit()ed into its own channel, one extra cross-thread hop) by
      ``--min-keyed-fusion-ratio`` (default 1.3; measured ~1.8 — the
      hop carries 4x the records at 6x the width). Relaxed to a
      no-collapse bound (>= 1.05) below 4 hardware threads;
    - ``keyed_fusion/adaptive_skewed`` (80% of the stream on one hot
      key, ~20us/record at its worker) must show the hot partition
      edge backing off its own batch target (``hot_adjust_down > 0``)
      while — given >= 4 hardware threads — the starved cold edges
      hold theirs (``cold_adjust_down == 0``: the starvation gate in
      BatchPolicy keeps arrival-limited slowness from shrinking them);
    - the skewed arm's ``skew_ratio`` must exceed the uniform arm's
      (the per-edge records_in actually resolve the imbalance).

Exit status is non-zero on any failure, so it can gate CI.

Usage:
    tools/bench_check.py [--bench build/bench/bench_micro]
                         [--mlog-bench build/bench/bench_mlog]
                         [--scenario-bench build/bench/bench_scenario]
                         [--linkdiscovery-bench build/bench/bench_link_discovery]
                         [--store-bench build/bench/bench_store_starjoin]
                         [--rdf-bench build/bench/bench_rdf_generation]
                         [--baseline bench/baselines/BENCH_micro.json]
                         [--tolerance 3.0] [--ratio-tolerance 1.8]
                         [--min-batch-speedup 3.0]
                         [--min-adaptive-ratio 0.85]
                         [--min-capacity-ratio 0.85]
                         [--budget-tolerance 1.3]
                         [--min-partition-speedup 2.0]
                         [--max-recovery-ms 2000]
                         [--min-chaos-spike 0.3]
                         [--min-clustered-speedup 2.0]
                         [--max-uniform-ratio 1.3]
                         [--min-adjacency-speedup 5.0]
                         [--min-fused-ratio 0.25]
                         [--min-keyed-fusion-ratio 1.3]
                         [--only micro,mlog,scenario,linkdiscovery,store,rdf]
                         [--no-run]   # reuse existing BENCH_*.json files
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Rows that form the static max_batch sweep the adaptive controller is
# compared against (the "best static" in gate 3).
STATIC_SWEEP = [
    "pipeline/record_at_a_time",
    "pipeline/batched16",
    "pipeline/batched64",
    "pipeline/batched256",
]

# Static channel bounds the elastic CapacityTuner is compared against
# (gate 4). bench_micro runs these against a bursty-stall consumer so
# the capacity choice actually shows up in throughput.
CAPACITY_SWEEP = [
    "pipeline_capacity/static64",
    "pipeline_capacity/static1024",
    "pipeline_capacity/static8192",
]

# (numerator, denominator) pairs whose measured ratio must stay within
# --ratio-tolerance of the committed baseline's ratio.
RATIO_GATES = [
    ("channel_transfer/batch64", "channel_transfer/batch1"),
    ("pipeline/batched64", "pipeline/record_at_a_time"),
    ("pipeline/fused_batched64", "pipeline/batched64"),
]


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    return {row["name"]: row for row in rows}


def row_ratio(rows, num, den):
    """records_per_s ratio num/den, or None when either row is absent."""
    a = rows.get(num)
    b = rows.get(den)
    if not a or not b or not b.get("records_per_s"):
        return None
    return a["records_per_s"] / b["records_per_s"]


def check_absolute(measured, baseline, tolerance, failures):
    print(f"\n{'row':<30} {'measured':>14} {'baseline':>14} {'ratio':>8}")
    for name, base_row in sorted(baseline.items()):
        base = base_row["records_per_s"]
        if base <= 0:
            # Latency rows carry p99_ms instead of a throughput figure;
            # check_latency gates them.
            continue
        if name not in measured:
            failures.append(f"row missing from bench output: {name}")
            print(f"{name:<30} {'MISSING':>14} {base:>14.0f}")
            continue
        got = measured[name]["records_per_s"]
        ratio = got / base if base else float("inf")
        verdict = ""
        if got < base / tolerance:
            failures.append(
                f"{name}: {got:.0f} rec/s < baseline {base:.0f} / "
                f"{tolerance:g} (ratio {ratio:.2f})")
            verdict = "  << REGRESSION"
        print(f"{name:<30} {got:>14.0f} {base:>14.0f} {ratio:>7.2f}x"
              f"{verdict}")


def check_relative(measured, baseline, ratio_tolerance, failures):
    print(f"\n{'relative gate':<50} {'measured':>9} {'baseline':>9}")
    for num, den in RATIO_GATES:
        got = row_ratio(measured, num, den)
        base = row_ratio(baseline, num, den)
        label = f"{num} / {den}"
        if got is None:
            failures.append(f"relative gate rows missing: {label}")
            print(f"{label:<50} {'MISSING':>9}")
            continue
        if base is None:
            # Baseline predates the row (first run after adding it):
            # report, don't gate.
            print(f"{label:<50} {got:>8.2f}x {'n/a':>9}")
            continue
        verdict = ""
        if got < base / ratio_tolerance:
            failures.append(
                f"{label}: measured ratio {got:.2f}x < baseline "
                f"{base:.2f}x / {ratio_tolerance:g}")
            verdict = "  << REGRESSION"
        print(f"{label:<50} {got:>8.2f}x {base:>8.2f}x{verdict}")


def check_tuner(measured, min_adaptive_ratio, failures):
    adaptive = measured.get("pipeline/adaptive")
    if not adaptive:
        failures.append("pipeline/adaptive row missing")
        return
    if "tuner_target_batch" not in adaptive:
        failures.append("pipeline/adaptive has no tuner_* fields — the "
                        "adaptive source edge lost its BatchTuner")
        return

    target = adaptive["tuner_target_batch"]
    lo = adaptive["tuner_min_batch"]
    hi = adaptive["tuner_batch_cap"]
    print(f"\nadaptive tuner: target={target} range=[{lo},{hi}] "
          f"samples={adaptive['tuner_samples']} "
          f"up={adaptive['tuner_adjust_up']} "
          f"down={adaptive['tuner_adjust_down']} "
          f"converged={adaptive['tuner_converged_batch']}")
    if not lo <= target <= hi:
        failures.append(
            f"adaptive target {target} escaped [{lo}, {hi}]")
    if adaptive["tuner_samples"] == 0:
        failures.append("adaptive tuner took no samples")
    if adaptive["tuner_adjust_up"] == 0:
        failures.append("adaptive tuner never grew its target under "
                        "steady load (adjust_up == 0)")

    best_static = max(
        (measured[n]["records_per_s"] for n in STATIC_SWEEP if n in measured),
        default=0.0)
    if best_static > 0:
        ratio = adaptive["records_per_s"] / best_static
        ok = ratio >= min_adaptive_ratio
        print(f"adaptive vs best static sweep row: {ratio:.2f}x "
              f"(required >= {min_adaptive_ratio:g}x)"
              f"{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                f"adaptive row at {ratio:.2f}x of best static < "
                f"{min_adaptive_ratio:g}x")
    else:
        failures.append("static sweep rows missing; cannot rate adaptive")

    slow = measured.get("pipeline/adaptive_slow_phase")
    if not slow or "tuner_adjust_down" not in slow:
        failures.append("pipeline/adaptive_slow_phase tuner row missing")
    else:
        down = slow["tuner_adjust_down"]
        ok = down > 0
        print(f"slow-phase back-off: adjust_down={down} "
              f"target={slow['tuner_target_batch']}"
              f"{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                "adaptive_slow_phase recorded no back-off adjustments — "
                "the controller ignored the slow consumer")


def check_capacity(measured, min_capacity_ratio, failures):
    adaptive = measured.get("pipeline_capacity/adaptive")
    if not adaptive:
        failures.append("pipeline_capacity/adaptive row missing")
        return
    if "capacity_resize_up" not in adaptive:
        failures.append("pipeline_capacity/adaptive has no capacity_* "
                        "fields — the elastic edge lost its CapacityTuner")
        return

    cap = adaptive["capacity"]
    lo = adaptive["capacity_min"]
    hi = adaptive["capacity_max"]
    print(f"\ncapacity tuner: bound={cap} range=[{lo},{hi}] "
          f"up={adaptive['capacity_resize_up']} "
          f"down={adaptive['capacity_resize_down']} "
          f"converged={adaptive['capacity_converged']}")
    if not lo <= cap <= hi:
        failures.append(f"elastic capacity {cap} escaped [{lo}, {hi}]")
    if adaptive["capacity_resize_up"] == 0:
        failures.append(
            "elastic capacity never grew under a bursty-stall consumer "
            "that saturates the seed bound (capacity_resize_up == 0)")

    best_static = max(
        (measured[n]["records_per_s"]
         for n in CAPACITY_SWEEP if n in measured),
        default=0.0)
    if best_static > 0:
        ratio = adaptive["records_per_s"] / best_static
        ok = ratio >= min_capacity_ratio
        print(f"adaptive capacity vs best static bound: {ratio:.2f}x "
              f"(required >= {min_capacity_ratio:g}x)"
              f"{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                f"adaptive capacity row at {ratio:.2f}x of best static "
                f"bound < {min_capacity_ratio:g}x")
    else:
        failures.append(
            "pipeline_capacity static sweep rows missing; cannot rate "
            "the elastic controller")


def check_latency(measured, budget_tolerance, failures):
    budgeted = measured.get("pipeline_latency/budget50")
    unbudgeted = measured.get("pipeline_latency/linger200")
    if not budgeted or "p99_ms" not in budgeted:
        failures.append("pipeline_latency/budget50 p99 row missing")
        return
    p99 = budgeted["p99_ms"]
    budget = budgeted.get("budget_ms", -1)
    if budget <= 0:
        failures.append("pipeline_latency/budget50 carries no budget_ms")
        return
    limit = budget * budget_tolerance
    ok = p99 <= limit
    print(f"\nlatency budget: budget50 p99={p99:.2f}ms vs "
          f"budget {budget}ms x {budget_tolerance:g} = {limit:.1f}ms"
          f"{'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"budgeted staging p99 {p99:.2f}ms > {budget}ms budget x "
            f"{budget_tolerance:g} tolerance")
    if unbudgeted and "p99_ms" in unbudgeted:
        ok = unbudgeted["p99_ms"] > p99
        print(f"unbudgeted linger p99={unbudgeted['p99_ms']:.2f}ms "
              f"(must exceed budgeted p99)"
              f"{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                "unbudgeted linger row p99 did not exceed the budgeted "
                "row — the budget gate is measuring nothing")
    else:
        failures.append("pipeline_latency/linger200 p99 row missing")


def check_keyed_fusion(measured, min_keyed_fusion_ratio, failures):
    """Gates the keyed-terminal fusion + skew-aware tuning rows (gate
    11; part of the micro suite)."""
    two_hop = measured.get("keyed_fusion/two_hop")
    fused = measured.get("keyed_fusion/fused_keyed")
    if not two_hop or not fused or not two_hop.get("records_per_s"):
        failures.append("keyed_fusion two_hop/fused_keyed rows missing")
        return
    hw = fused.get("hw_threads", 0)
    # On tiny runners the two constructions time-slice the same cores
    # and the eliminated hop buys less; only a collapse (the fused
    # terminal somehow SLOWER than paying an extra hop) is gated there.
    required = min_keyed_fusion_ratio if hw >= 4 else 1.05
    ratio = fused["records_per_s"] / two_hop["records_per_s"]
    ok = ratio >= required
    print(f"\nfused_keyed vs two_hop: {ratio:.2f}x "
          f"(required >= {required:g}x on {hw} hw threads)"
          f"{'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"fused keyed terminal at {ratio:.2f}x of two-hop < "
            f"{required:g}x (hw_threads={hw})")

    skewed = measured.get("keyed_fusion/adaptive_skewed")
    uniform = measured.get("keyed_fusion/adaptive_uniform")
    if not skewed or "hot_adjust_down" not in skewed:
        failures.append("keyed_fusion/adaptive_skewed skew fields missing "
                        "— the keyed stage lost its per-edge tuners")
        return
    hot = skewed["hot_adjust_down"]
    cold = skewed["cold_adjust_down"]
    print(f"skewed arm: skew_ratio={skewed['skew_ratio']:.2f} "
          f"hot_adjust_down={hot} cold_adjust_down={cold} "
          f"targets=[{skewed['min_target']},{skewed['max_target']}]")
    if skewed.get("hot_edges", 0) < 1:
        failures.append("skewed arm classified no hot partition edge")
    if hot == 0:
        failures.append(
            "hot partition edge recorded no back-off under a ~1.3ms/pop "
            "workload — per-edge tuning is not reacting to skew")
    if hw >= 4 and cold != 0:
        failures.append(
            f"cold partition edges backed off {cold} times in sympathy "
            f"with the hot edge — the starvation gate is not holding "
            f"them (hw_threads={hw})")
    if not uniform or "skew_ratio" not in uniform:
        failures.append("keyed_fusion/adaptive_uniform skew row missing")
    else:
        ok = skewed["skew_ratio"] > uniform["skew_ratio"]
        print(f"skew_ratio skewed={skewed['skew_ratio']:.2f} vs "
              f"uniform={uniform['skew_ratio']:.2f} (skewed must exceed)"
              f"{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                f"skewed arm skew_ratio {skewed['skew_ratio']:.2f} does "
                f"not exceed uniform {uniform['skew_ratio']:.2f} — the "
                f"per-edge records_in do not resolve the imbalance")


def check_mlog(rows, min_partition_speedup, failures):
    """Gates the bench_mlog partition-sweep rows (gate 6)."""
    sweep = {r["partitions"]: r for r in rows if "partitions" in r}
    print(f"\n{'partitions':>10} {'append rec/s':>14} {'replay rec/s':>14}")
    for want in (1, 4, 16):
        row = sweep.get(want)
        if not row:
            failures.append(f"BENCH_mlog.json missing partitions={want} row")
            print(f"{want:>10} {'MISSING':>14}")
            continue
        if row.get("workload") != "skewed_mkeys":
            failures.append(
                f"partitions={want} row is not the skewed_mkeys workload")
        append = row.get("append_records_per_s", 0)
        replay = row.get("replay_records_per_s", 0)
        print(f"{want:>10} {append:>14.0f} {replay:>14.0f}")
        if append <= 0 or replay <= 0:
            failures.append(
                f"partitions={want} row reports zero throughput")
    p1 = sweep.get(1)
    p4 = sweep.get(4)
    if not p1 or not p4 or not p1.get("append_records_per_s"):
        failures.append("cannot rate partition scale-out: p1/p4 rows missing")
        return
    hw = p4.get("hw_threads", 0)
    # A CPU-bound append cannot scale past the core count; below 4
    # hardware threads the gate only guards against a pathological
    # collapse (lock contention serializing the partitions).
    required = min_partition_speedup if hw >= 4 else 0.35
    speedup = p4["append_records_per_s"] / p1["append_records_per_s"]
    ok = speedup >= required
    print(f"partitions=4 vs partitions=1 aggregate append: {speedup:.2f}x "
          f"(required >= {required:g}x on {hw} hw threads)"
          f"{'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"partition scale-out {speedup:.2f}x < {required:g}x "
            f"(hw_threads={hw})")


def check_scenario(rows, budget_tolerance, max_recovery_ms, min_chaos_spike,
                   failures):
    """Gates the open-loop scenario arms (gate 7)."""
    arms = {r["name"]: r for r in rows}
    print(f"\n{'scenario arm':<20} {'p99ms':>8} {'p999ms':>9} {'cons':>7} "
          f"{'gaps':>5} {'dups':>5} {'rst':>4} {'recov':>6}")
    for name in ("scenario/steady", "scenario/diurnal", "scenario/chaos"):
        row = arms.get(name)
        if not row:
            failures.append(f"BENCH_scenario.json missing {name} row")
            print(f"{name:<20} {'MISSING':>8}")
            continue
        print(f"{name:<20} {row['p99_ms']:>8.2f} {row['p999_ms']:>9.2f} "
              f"{row['consumed']:>7} {row['gaps']:>5} {row['dups']:>5} "
              f"{row['restarts']:>4} {row['recovery_ms']:>6}")
        err = row.get("report", {}).get("error", "")
        if err:
            failures.append(f"{name}: run reported an error: {err}")
        # Exactly-once delivery: every appended record reaches the sink
        # once. On the chaos arm this is the resume-at-watermark proof.
        if row["consumed"] != row["appended"]:
            failures.append(
                f"{name}: consumed {row['consumed']} != appended "
                f"{row['appended']} — records lost in flight")
        if row["gaps"] or row["dups"]:
            failures.append(
                f"{name}: delivery not exactly-once (gaps={row['gaps']} "
                f"dups={row['dups']})")

    steady = arms.get("scenario/steady")
    chaos = arms.get("scenario/chaos")
    if not steady or not chaos:
        return
    hw = steady.get("hw_threads", 0)

    # Steady-state SLO: same budget x tolerance contract as the PR 5
    # staging-latency gates; doubled on runners that cannot physically
    # host producer + 4 shards + chaos without oversubscription.
    tol = budget_tolerance * (1.0 if hw >= 4 else 2.0)
    limit = steady["budget_ms"] * tol
    ok = steady["p99_ms"] <= limit
    print(f"steady e2e p99={steady['p99_ms']:.2f}ms vs budget "
          f"{steady['budget_ms']}ms x {tol:g} = {limit:.1f}ms "
          f"(hw_threads={hw}){'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"steady scenario p99 {steady['p99_ms']:.2f}ms > "
            f"{steady['budget_ms']}ms budget x {tol:g}")

    # The chaos arm must demonstrate its injections.
    if chaos["restarts"] < 1:
        failures.append("chaos arm recorded no GroupCursor restarts — "
                        "the source-restart fault never fired")
    if chaos["sync_stalls"] < 1:
        failures.append("chaos arm recorded no mlog sync stalls — the "
                        "fsync-stall fault never fired")
    stall = chaos.get("stall_ms", 0)
    if stall > 0:
        spike_floor = min_chaos_spike * stall
        ok = chaos["p999_ms"] >= spike_floor
        print(f"chaos p999={chaos['p999_ms']:.2f}ms vs injected "
              f"{stall}ms stall x {min_chaos_spike:g} = "
              f"{spike_floor:.0f}ms floor{'' if ok else '  << FAIL'}")
        if not ok:
            failures.append(
                f"chaos p999 {chaos['p999_ms']:.2f}ms < "
                f"{spike_floor:.0f}ms — the injected fsync stall left "
                f"no latency signature (open-loop stamping broken?)")
    if chaos["disruption_ms"] <= 0:
        failures.append("chaos arm measured zero SLO disruption — the "
                        "recovery gate is measuring nothing")
    allowed = max_recovery_ms * (1.0 if hw >= 4 else 2.0)
    ok = chaos["recovery_ms"] <= allowed
    print(f"chaos recovery={chaos['recovery_ms']}ms "
          f"(allowed <= {allowed:g}ms on {hw} hw threads)"
          f"{'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"chaos recovery {chaos['recovery_ms']}ms > {allowed:g}ms — "
            f"the pipeline did not re-meet its SLO after fault clear")


def check_linkdiscovery(rows, min_clustered_speedup, max_uniform_ratio,
                        failures):
    """Gates the grid-vs-rtree spatial index sweep (gate 8)."""
    arms = {r["name"]: r for r in rows}
    print(f"\n{'index arm':<36} {'queries/s':>12} {'matches':>10}")
    for dist in ("clustered", "uniform"):
        for backend in ("grid", "rtree"):
            name = f"linkdiscovery/{dist}/{backend}"
            row = arms.get(name)
            if not row:
                failures.append(
                    f"BENCH_linkdiscovery.json missing {name} row")
                print(f"{name:<36} {'MISSING':>12}")
                continue
            print(f"{name:<36} {row['queries_per_s']:>12.0f} "
                  f"{row['matches']:>10}")
            if row.get("queries_per_s", 0) <= 0:
                failures.append(f"{name} reports zero throughput")

    for dist in ("clustered", "uniform"):
        grid = arms.get(f"linkdiscovery/{dist}/grid")
        rtree = arms.get(f"linkdiscovery/{dist}/rtree")
        if not grid or not rtree:
            failures.append(
                f"cannot rate {dist} arm: grid/rtree rows missing")
            continue
        # Differential invariant on the bench workload itself: both
        # backends must return exactly the same result multiset.
        if grid["matches"] != rtree["matches"]:
            failures.append(
                f"{dist}: grid returned {grid['matches']} matches but "
                f"rtree returned {rtree['matches']} — backends disagree "
                f"on the same queries")
        hw = rtree.get("hw_threads", 0)
        if dist == "clustered":
            # Hot cells hold thousands of points; the rtree's adaptive
            # fanout must pay off. Single-core runners get a softer
            # floor: the skew advantage shrinks when the flat cell
            # scan stays cache-resident.
            required = min_clustered_speedup if hw >= 4 else 1.4
            speedup = rtree["queries_per_s"] / grid["queries_per_s"]
            ok = speedup >= required
            print(f"clustered rtree vs grid: {speedup:.2f}x "
                  f"(required >= {required:g}x on {hw} hw threads)"
                  f"{'' if ok else '  << FAIL'}")
            if not ok:
                failures.append(
                    f"clustered rtree speedup {speedup:.2f}x < "
                    f"{required:g}x (hw_threads={hw})")
        else:
            # Where the grid is at its best the rtree may trail, but
            # not collapse — that would make the default backend a
            # regression for uniform traffic.
            allowed = max_uniform_ratio * (1.0 if hw >= 4 else 1.5)
            ratio = grid["queries_per_s"] / rtree["queries_per_s"]
            ok = ratio <= allowed
            print(f"uniform grid vs rtree: {ratio:.2f}x "
                  f"(allowed <= {allowed:g}x on {hw} hw threads)"
                  f"{'' if ok else '  << FAIL'}")
            if not ok:
                failures.append(
                    f"uniform grid/rtree ratio {ratio:.2f}x > "
                    f"{allowed:g}x (hw_threads={hw})")


def check_store(rows, min_adjacency_speedup, failures):
    """Gates the star-join plan comparison (gate 9)."""
    arms = {r["name"]: r for r in rows}
    trios = {
        "clustered": ["store/starjoin/clustered/scan",
                      "store/starjoin/clustered/vertical",
                      "store/starjoin/clustered/adjacency"],
        "st": ["store/starjoin/st/adjacency",
               "store/starjoin/st/adjacency_pushdown",
               "store/starjoin/st/vertical_pushdown"],
    }
    print(f"\n{'star-join arm':<42} {'matches':>8} {'scanned':>9} "
          f"{'wall ms':>8}")
    for label, names in trios.items():
        for name in names:
            row = arms.get(name)
            if not row:
                failures.append(f"BENCH_store.json missing {name} row")
                print(f"{name:<42} {'MISSING':>8}")
                continue
            print(f"{name:<42} {row['matches']:>8} {row['scanned']:>9} "
                  f"{row['wall_ms']:>8.3f}")
            if row.get("matches", 0) <= 0:
                failures.append(f"{name} found zero matches — the bench "
                                f"graph produced no joinable stars")
        # Differential invariant on the bench workload itself: every
        # plan in the trio must return exactly the same result count.
        counts = {arms[n]["matches"] for n in names if n in arms}
        if len(counts) > 1:
            failures.append(
                f"{label} trio disagrees on matches: "
                f"{sorted(counts)} — a plan is returning wrong bindings")

    scan = arms.get("store/starjoin/clustered/scan")
    adj = arms.get("store/starjoin/clustered/adjacency")
    if not scan or not adj or not adj.get("wall_ms"):
        failures.append("cannot rate adjacency plan: clustered "
                        "scan/adjacency rows missing")
        return
    hw = adj.get("hw_threads", 0)
    # The scan plan fans its partitions across a worker pool; on tiny
    # runners that parallelism is gone and the gap narrows, so the
    # gate only guards against the merge join losing its asymptotic
    # advantage outright.
    required = min_adjacency_speedup if hw >= 4 else 2.0
    speedup = scan["wall_ms"] / adj["wall_ms"]
    ok = speedup >= required
    print(f"clustered adjacency vs scan: {speedup:.1f}x "
          f"(required >= {required:g}x on {hw} hw threads)"
          f"{'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"adjacency star-join speedup {speedup:.2f}x < "
            f"{required:g}x (hw_threads={hw})")


def check_rdf(rows, min_fused_ratio, failures):
    """Gates the batch-vs-fused RDF enrichment rows (gate 10)."""
    arms = {r["name"]: r for r in rows}
    print(f"\n{'rdf arm':<24} {'records':>9} {'triples':>9} "
          f"{'records/s':>11}")
    for name in ("rdf/generation/batch", "rdf/generation/fused"):
        row = arms.get(name)
        if not row:
            failures.append(f"BENCH_rdf.json missing {name} row")
            print(f"{name:<24} {'MISSING':>9}")
            continue
        print(f"{name:<24} {row['records']:>9} {row['triples']:>9} "
              f"{row['records_per_s']:>11.0f}")
        if row.get("records_per_s", 0) <= 0:
            failures.append(f"{name} reports zero throughput")

    batch = arms.get("rdf/generation/batch")
    fused = arms.get("rdf/generation/fused")
    if not batch or not fused or not batch.get("records_per_s"):
        failures.append("cannot rate fused enrichment: batch/fused rows "
                        "missing")
        return
    # Counter-plumbing invariant: the KnowledgeStore's StoreCounters
    # (the numbers KgStoreSink surfaces through StageMetrics and
    # ReportJson) must account for exactly the triples the tight
    # batch loop emits for the same records.
    if batch["triples"] != fused["triples"]:
        failures.append(
            f"fused path stored {fused['triples']} triples but the batch "
            f"path emitted {batch['triples']} — triples lost between the "
            f"generator stage and the store sink")
    hw = fused.get("hw_threads", 0)
    required = min_fused_ratio if hw >= 4 else 0.10
    ratio = fused["records_per_s"] / batch["records_per_s"]
    ok = ratio >= required
    print(f"fused vs batch enrichment: {ratio:.2f}x "
          f"(required >= {required:g}x on {hw} hw threads)"
          f"{'' if ok else '  << FAIL'}")
    if not ok:
        failures.append(
            f"fused enrichment at {ratio:.2f}x of batch < {required:g}x "
            f"(hw_threads={hw})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        default=os.path.join(REPO_ROOT, "build", "bench", "bench_micro"),
        help="path to the bench_micro binary",
    )
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "bench", "baselines",
                             "BENCH_micro.json"),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance", type=float, default=3.0,
        help="fail when measured < baseline / tolerance (default 3.0)",
    )
    parser.add_argument(
        "--ratio-tolerance", type=float, default=1.8,
        help="fail when a measured row ratio < baseline ratio / this "
             "(default 1.8; ratios are machine-speed-invariant)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=3.0,
        help="required channel-transfer speedup of batch64 over batch1",
    )
    parser.add_argument(
        "--min-adaptive-ratio", type=float, default=0.85,
        help="required pipeline/adaptive throughput as a fraction of the "
             "best static sweep row from the same run (default 0.85)",
    )
    parser.add_argument(
        "--min-capacity-ratio", type=float, default=0.85,
        help="required pipeline_capacity/adaptive throughput as a "
             "fraction of the best static capacity row from the same "
             "run (default 0.85)",
    )
    parser.add_argument(
        "--budget-tolerance", type=float, default=1.3,
        help="allowed pipeline_latency/budget50 p99 as a multiple of "
             "its declared budget_ms (default 1.3; covers linger-poll "
             "granularity and scheduler jitter)",
    )
    parser.add_argument(
        "--mlog-bench",
        default=os.path.join(REPO_ROOT, "build", "bench", "bench_mlog"),
        help="path to the bench_mlog binary (partition-sweep gates)",
    )
    parser.add_argument(
        "--min-partition-speedup", type=float, default=2.0,
        help="required partitions=4 aggregate append speedup over "
             "partitions=1 when >= 4 hardware threads are available "
             "(default 2.0)",
    )
    parser.add_argument(
        "--scenario-bench",
        default=os.path.join(REPO_ROOT, "build", "bench", "bench_scenario"),
        help="path to the bench_scenario binary (open-loop SLO gates)",
    )
    parser.add_argument(
        "--max-recovery-ms", type=float, default=2000.0,
        help="allowed chaos-arm recovery time after fault clear "
             "(default 2000; doubled below 4 hardware threads)",
    )
    parser.add_argument(
        "--min-chaos-spike", type=float, default=0.3,
        help="required chaos-arm p999 as a fraction of the injected "
             "per-append fsync stall (default 0.3)",
    )
    parser.add_argument(
        "--linkdiscovery-bench",
        default=os.path.join(REPO_ROOT, "build", "bench",
                             "bench_link_discovery"),
        help="path to the bench_link_discovery binary (spatial index "
             "gates)",
    )
    parser.add_argument(
        "--min-clustered-speedup", type=float, default=2.0,
        help="required rtree speedup over the grid on the clustered "
             "distribution (default 2.0; relaxed to 1.4 below 4 "
             "hardware threads)",
    )
    parser.add_argument(
        "--max-uniform-ratio", type=float, default=1.3,
        help="allowed grid/rtree throughput ratio on the uniform "
             "distribution (default 1.3; relaxed x1.5 below 4 "
             "hardware threads)",
    )
    parser.add_argument(
        "--store-bench",
        default=os.path.join(REPO_ROOT, "build", "bench",
                             "bench_store_starjoin"),
        help="path to the bench_store_starjoin binary (triplestore "
             "star-join gates)",
    )
    parser.add_argument(
        "--min-adjacency-speedup", type=float, default=5.0,
        help="required adjacency-index star-join speedup over the full "
             "table scan on the clustered arm (default 5.0; relaxed to "
             "2.0 below 4 hardware threads)",
    )
    parser.add_argument(
        "--rdf-bench",
        default=os.path.join(REPO_ROOT, "build", "bench",
                             "bench_rdf_generation"),
        help="path to the bench_rdf_generation binary (batch-vs-fused "
             "enrichment gates)",
    )
    parser.add_argument(
        "--min-fused-ratio", type=float, default=0.25,
        help="required fused-pipeline enrichment throughput as a "
             "fraction of the tight batch loop (default 0.25; relaxed "
             "to 0.10 below 4 hardware threads)",
    )
    parser.add_argument(
        "--min-keyed-fusion-ratio", type=float, default=1.3,
        help="required keyed_fusion/fused_keyed throughput as a multiple "
             "of keyed_fusion/two_hop (default 1.3; relaxed to 1.05 "
             "below 4 hardware threads)",
    )
    parser.add_argument(
        "--only", default="micro,mlog,scenario,linkdiscovery,store,rdf",
        help="comma list of bench suites to run and gate "
             "(default: micro,mlog,scenario,linkdiscovery,store,rdf)",
    )
    parser.add_argument(
        "--no-run", action="store_true",
        help="skip running the benches; check existing BENCH_*.json "
             "files next to the binaries",
    )
    args = parser.parse_args()

    suites = {s.strip() for s in args.only.split(",") if s.strip()}
    unknown = suites - {"micro", "mlog", "scenario", "linkdiscovery",
                        "store", "rdf"}
    if unknown:
        print(f"unknown --only suites: {sorted(unknown)}", file=sys.stderr)
        return 2

    binaries = {
        "micro": (args.bench, "BENCH_micro.json"),
        "mlog": (args.mlog_bench, "BENCH_mlog.json"),
        "scenario": (args.scenario_bench, "BENCH_scenario.json"),
        "linkdiscovery": (args.linkdiscovery_bench,
                          "BENCH_linkdiscovery.json"),
        "store": (args.store_bench, "BENCH_store.json"),
        "rdf": (args.rdf_bench, "BENCH_rdf.json"),
    }
    outputs = {}
    for suite in ("micro", "mlog", "scenario", "linkdiscovery", "store",
                  "rdf"):
        if suite not in suites:
            continue
        binary, result_name = binaries[suite]
        bench_dir = os.path.dirname(os.path.abspath(binary))
        outputs[suite] = os.path.join(bench_dir, result_name)
        if args.no_run:
            continue
        if not os.path.exists(binary):
            print(f"bench binary not found: {binary}", file=sys.stderr)
            return 2
        print(f"running: {binary} --smoke (cwd={bench_dir})")
        proc = subprocess.run([os.path.abspath(binary), "--smoke"],
                              cwd=bench_dir)
        if proc.returncode != 0:
            print(f"{os.path.basename(binary)} exited with "
                  f"{proc.returncode}", file=sys.stderr)
            return 2

    for suite, path in outputs.items():
        if not os.path.exists(path):
            print(f"missing bench output: {path}", file=sys.stderr)
            return 2

    failures = []
    if "micro" in suites:
        measured = load_rows(outputs["micro"])
        baseline = load_rows(args.baseline)
        check_absolute(measured, baseline, args.tolerance, failures)
        check_relative(measured, baseline, args.ratio_tolerance, failures)
        check_tuner(measured, args.min_adaptive_ratio, failures)
        check_capacity(measured, args.min_capacity_ratio, failures)
        check_latency(measured, args.budget_tolerance, failures)
        check_keyed_fusion(measured, args.min_keyed_fusion_ratio, failures)

        # Acceptance invariant: batching must actually amortize the lock.
        b1 = measured.get("channel_transfer/batch1")
        b64 = measured.get("channel_transfer/batch64")
        if b1 and b64:
            speedup = b64["records_per_s"] / b1["records_per_s"]
            ok = speedup >= args.min_batch_speedup
            print(f"\nchannel transfer batch64 vs batch1: {speedup:.1f}x "
                  f"(required >= {args.min_batch_speedup:g}x)"
                  f"{'' if ok else '  << FAIL'}")
            if not ok:
                failures.append(
                    f"batch64 speedup {speedup:.2f}x < "
                    f"{args.min_batch_speedup:g}x")
        else:
            failures.append("channel_transfer batch1/batch64 rows missing")

    if "mlog" in suites:
        with open(outputs["mlog"]) as f:
            mlog_rows = json.load(f)
        check_mlog(mlog_rows, args.min_partition_speedup, failures)

    if "scenario" in suites:
        with open(outputs["scenario"]) as f:
            scenario_rows = json.load(f)
        check_scenario(scenario_rows, args.budget_tolerance,
                       args.max_recovery_ms, args.min_chaos_spike, failures)

    if "linkdiscovery" in suites:
        with open(outputs["linkdiscovery"]) as f:
            link_rows = json.load(f)
        check_linkdiscovery(link_rows, args.min_clustered_speedup,
                            args.max_uniform_ratio, failures)

    if "store" in suites:
        with open(outputs["store"]) as f:
            store_rows = json.load(f)
        check_store(store_rows, args.min_adjacency_speedup, failures)

    if "rdf" in suites:
        with open(outputs["rdf"]) as f:
            rdf_rows = json.load(f)
        check_rdf(rdf_rows, args.min_fused_ratio, failures)

    if failures:
        print("\nbench_check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench_check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
