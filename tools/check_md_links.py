#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Walks every tracked ``*.md`` file (skipping build trees and
third-party dirs), extracts inline links and images
(``[text](target)`` / ``![alt](target)``), and verifies that:

- relative file links resolve to an existing file or directory
  (relative to the file containing the link);
- intra-document and cross-document ``#anchor`` fragments match a
  heading in the target file (GitHub-style slugs: lowercase, spaces to
  dashes, punctuation stripped);
- no link points outside the repository root.

External links (``http://``, ``https://``, ``mailto:``) are *not*
fetched — CI must not depend on the network — but are counted so the
summary shows what was skipped.

Exit status is non-zero when any link is broken, so CI can gate on it
(see the ``docs`` job in .github/workflows/ci.yml).

Usage:
    tools/check_md_links.py [root]         # default: repo root
    tools/check_md_links.py README.md docs/STREAM_TUNING.md
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "bench-build", "third_party", "node_modules",
             ".cache"}

# [text](target) or ![alt](target); target ends at the first unescaped
# ')' — good enough for the repo's docs, which don't nest parens in URLs.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading):
    """GitHub's anchor slug: lowercase, spaces->dashes, drop punctuation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)       # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path, cache={}):
    if path in cache:
        return cache[path]
    slugs = set()
    try:
        with open(path, encoding="utf-8") as f:
            in_fence = False
            for line in f:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    slugs.add(github_slug(m.group(1)))
    except OSError:
        pass
    cache[path] = slugs
    return slugs


def links_of(path):
    """Yield (lineno, target) for every markdown link outside code fences."""
    with open(path, encoding="utf-8") as f:
        in_fence = False
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                yield lineno, m.group(1)


def find_md_files(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def main():
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    roots = sys.argv[1:] or [repo_root]
    # Escape boundary: the repo when scanning inside it, else the common
    # ancestor of the explicit roots (lets the self-test run from /tmp).
    boundary = os.path.commonpath(
        [os.path.abspath(r if os.path.isdir(r) else os.path.dirname(r) or ".")
         for r in roots] + [repo_root]
        if all(os.path.abspath(r).startswith(repo_root) for r in roots)
        else [os.path.abspath(r if os.path.isdir(r) else
                              os.path.dirname(r) or ".") for r in roots])

    checked = 0
    external = 0
    errors = []
    for md in find_md_files(roots):
        base = os.path.dirname(os.path.abspath(md))
        for lineno, target in links_of(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                external += 1
                continue
            checked += 1
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(os.path.join(base, path_part))
            else:
                dest = os.path.abspath(md)  # same-file #anchor
            rel = os.path.relpath(dest, boundary)
            if rel.startswith(".."):
                errors.append(f"{md}:{lineno}: link escapes the repo: "
                              f"{target}")
                continue
            if not os.path.exists(dest):
                errors.append(f"{md}:{lineno}: broken link: {target}")
                continue
            if fragment and os.path.isfile(dest) and dest.endswith(".md"):
                if fragment.lower() not in headings_of(dest):
                    errors.append(
                        f"{md}:{lineno}: missing anchor #{fragment} in "
                        f"{os.path.relpath(dest, boundary)}")

    print(f"check_md_links: {checked} relative links checked, "
          f"{external} external links skipped")
    if errors:
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        print(f"check_md_links FAILED ({len(errors)} broken)",
              file=sys.stderr)
        return 1
    print("check_md_links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
