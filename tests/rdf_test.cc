#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "rdf/bgp.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/rdfgen.h"
#include "rdf/semantic_trajectory.h"
#include "rdf/sparql.h"
#include "rdf/term.h"
#include "rdf/vocab.h"

namespace tcmf::rdf {
namespace {

// ------------------------------------------------------------------ Term

TEST(TermTest, Constructors) {
  EXPECT_EQ(Iri("http://x/a").kind, Term::Kind::kIri);
  EXPECT_EQ(Literal("v").kind, Term::Kind::kLiteral);
  EXPECT_EQ(Blank("b1").kind, Term::Kind::kBlank);
  EXPECT_EQ(TypedLiteral("5", "http://x/int").datatype, "http://x/int");
}

TEST(TermTest, ToStringForms) {
  EXPECT_EQ(Iri("http://x/a").ToString(), "<http://x/a>");
  EXPECT_EQ(Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Blank("n").ToString(), "_:n");
  EXPECT_EQ(TypedLiteral("5", "http://x/i").ToString(),
            "\"5\"^^<http://x/i>");
}

TEST(TermTest, NumericLiterals) {
  Term d = DoubleLiteral(2.5);
  EXPECT_EQ(d.lexical, "2.5");
  Term i = IntLiteral(-7);
  EXPECT_EQ(i.lexical, "-7");
}

TEST(TermTest, KeyDistinguishesKinds) {
  EXPECT_NE(TermKey(Iri("x")), TermKey(Literal("x")));
  EXPECT_NE(TermKey(Literal("x")), TermKey(Blank("x")));
  EXPECT_NE(TermKey(Literal("5")),
            TermKey(TypedLiteral("5", "http://x/int")));
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Iri("a"), Iri("a"));
  EXPECT_FALSE(Iri("a") == Literal("a"));
}

// ------------------------------------------------------------ Dictionary

TEST(DictionaryTest, EncodeIsStable) {
  Dictionary dict;
  uint64_t a = dict.Encode(Iri("x"));
  uint64_t b = dict.Encode(Iri("x"));
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, IdsAreDenseFromOne) {
  Dictionary dict;
  EXPECT_EQ(dict.Encode(Iri("a")), 1u);
  EXPECT_EQ(dict.Encode(Iri("b")), 2u);
  EXPECT_EQ(dict.Encode(Literal("a")), 3u);
}

TEST(DictionaryTest, DecodeRoundTrip) {
  Dictionary dict;
  Term t = TypedLiteral("3.5", "http://x/d");
  uint64_t id = dict.Encode(t);
  auto back = dict.Decode(id);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(DictionaryTest, LookupWithoutInterning) {
  Dictionary dict;
  EXPECT_EQ(dict.Lookup(Iri("missing")), Dictionary::kNoId);
  dict.Encode(Iri("there"));
  EXPECT_NE(dict.Lookup(Iri("there")), Dictionary::kNoId);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, DecodeInvalidId) {
  Dictionary dict;
  EXPECT_FALSE(dict.Decode(0).has_value());
  EXPECT_FALSE(dict.Decode(99).has_value());
}

TEST(DictionaryTest, TripleRoundTrip) {
  Dictionary dict;
  Triple t{Iri("s"), Iri("p"), Literal("o")};
  EncodedTriple enc = dict.Encode(t);
  auto back = dict.Decode(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

// ----------------------------------------------------------------- Graph

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() {
    graph_.Add({Iri("s1"), Iri("type"), Iri("Vessel")});
    graph_.Add({Iri("s2"), Iri("type"), Iri("Vessel")});
    graph_.Add({Iri("s3"), Iri("type"), Iri("Aircraft")});
    graph_.Add({Iri("s1"), Iri("speed"), DoubleLiteral(5.0)});
    graph_.Add({Iri("s2"), Iri("speed"), DoubleLiteral(8.0)});
  }
  Graph graph_;
};

TEST_F(GraphTest, SizeCounts) { EXPECT_EQ(graph_.size(), 5u); }

TEST_F(GraphTest, MatchBySubject) {
  Term s1 = Iri("s1");
  auto triples = graph_.MatchDecoded(&s1, nullptr, nullptr);
  EXPECT_EQ(triples.size(), 2u);
}

TEST_F(GraphTest, MatchByPredicateObject) {
  Term type = Iri("type");
  Term vessel = Iri("Vessel");
  auto triples = graph_.MatchDecoded(nullptr, &type, &vessel);
  EXPECT_EQ(triples.size(), 2u);
}

TEST_F(GraphTest, MatchByObjectOnly) {
  Term aircraft = Iri("Aircraft");
  auto triples = graph_.MatchDecoded(nullptr, nullptr, &aircraft);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].s, Iri("s3"));
}

TEST_F(GraphTest, MatchAllWildcard) {
  auto triples = graph_.MatchDecoded(nullptr, nullptr, nullptr);
  EXPECT_EQ(triples.size(), 5u);
}

TEST_F(GraphTest, MatchUnknownTermIsEmpty) {
  Term nothing = Iri("unseen");
  EXPECT_TRUE(graph_.MatchDecoded(&nothing, nullptr, nullptr).empty());
}

TEST_F(GraphTest, CountMatchesMatch) {
  uint64_t type = graph_.dictionary().Lookup(Iri("type"));
  EXPECT_EQ(graph_.Count(0, type, 0), 3u);
}

TEST_F(GraphTest, MatchAfterIncrementalAdd) {
  Term s9 = Iri("s9");
  EXPECT_TRUE(graph_.MatchDecoded(&s9, nullptr, nullptr).empty());
  graph_.Add({Iri("s9"), Iri("type"), Iri("Vessel")});
  EXPECT_EQ(graph_.MatchDecoded(&s9, nullptr, nullptr).size(), 1u);
  Term type = Iri("type");
  Term vessel = Iri("Vessel");
  EXPECT_EQ(graph_.MatchDecoded(nullptr, &type, &vessel).size(), 3u);
}

// ------------------------------------------------------------------- BGP

class BgpTest : public ::testing::Test {
 protected:
  BgpTest() {
    graph_.Add({Iri("v1"), Iri("type"), Iri("Vessel")});
    graph_.Add({Iri("v2"), Iri("type"), Iri("Vessel")});
    graph_.Add({Iri("v1"), Iri("flag"), Literal("GR")});
    graph_.Add({Iri("v2"), Iri("flag"), Literal("ES")});
    graph_.Add({Iri("v1"), Iri("inside"), Iri("area1")});
    graph_.Add({Iri("area1"), Iri("kind"), Literal("protected")});
  }
  Graph graph_;
};

TEST_F(BgpTest, SinglePattern) {
  auto rows = EvaluateBgp(
      graph_, {{PatternTerm::Var("v"), PatternTerm::Const(Iri("type")),
                PatternTerm::Const(Iri("Vessel"))}});
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(BgpTest, JoinAcrossPatterns) {
  // Vessels inside a protected area.
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var("v"), PatternTerm::Const(Iri("type")),
       PatternTerm::Const(Iri("Vessel"))},
      {PatternTerm::Var("v"), PatternTerm::Const(Iri("inside")),
       PatternTerm::Var("a")},
      {PatternTerm::Var("a"), PatternTerm::Const(Iri("kind")),
       PatternTerm::Const(Literal("protected"))},
  };
  auto rows = EvaluateBgp(graph_, patterns);
  ASSERT_EQ(rows.size(), 1u);
  auto v = BoundTerm(graph_, rows[0], "v");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, Iri("v1"));
}

TEST_F(BgpTest, NoMatchReturnsEmpty) {
  auto rows = EvaluateBgp(
      graph_, {{PatternTerm::Var("v"), PatternTerm::Const(Iri("type")),
                PatternTerm::Const(Iri("Submarine"))}});
  EXPECT_TRUE(rows.empty());
}

TEST_F(BgpTest, UnknownConstantShortCircuits) {
  auto rows = EvaluateBgp(
      graph_, {{PatternTerm::Var("v"), PatternTerm::Const(Iri("never_seen")),
                PatternTerm::Var("o")}});
  EXPECT_TRUE(rows.empty());
}

TEST_F(BgpTest, VariableReuseWithinPattern) {
  graph_.Add({Iri("self"), Iri("sameAs"), Iri("self")});
  auto rows = EvaluateBgp(
      graph_, {{PatternTerm::Var("x"), PatternTerm::Const(Iri("sameAs")),
                PatternTerm::Var("x")}});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(*BoundTerm(graph_, rows[0], "x"), Iri("self"));
}

TEST_F(BgpTest, MultipleResultsBindAllVariables) {
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var("v"), PatternTerm::Const(Iri("type")),
       PatternTerm::Const(Iri("Vessel"))},
      {PatternTerm::Var("v"), PatternTerm::Const(Iri("flag")),
       PatternTerm::Var("f")},
  };
  auto rows = EvaluateBgp(graph_, patterns);
  ASSERT_EQ(rows.size(), 2u);
  std::set<std::string> flags;
  for (const auto& row : rows) {
    flags.insert(BoundTerm(graph_, row, "f")->lexical);
  }
  EXPECT_EQ(flags, (std::set<std::string>{"GR", "ES"}));
}

// ---------------------------------------------------------------- RDFGen

TEST(VariableVectorTest, FieldBindings) {
  VariableVector vars;
  vars.DefineFieldLiteral("name", "name");
  vars.DefineFieldDouble("speed", "speed");
  vars.DefineFieldInt("count", "count");
  vars.DefineFieldIri("entity", "id", "http://x/obj/");

  stream::Record r;
  r.Set("name", std::string("alpha"));
  r.Set("speed", 5.5);
  r.Set("count", static_cast<int64_t>(3));
  r.Set("id", static_cast<int64_t>(42));

  EXPECT_EQ(vars.Resolve("name", r)->lexical, "alpha");
  EXPECT_EQ(vars.Resolve("speed", r)->lexical, "5.5");
  EXPECT_EQ(vars.Resolve("count", r)->lexical, "3");
  EXPECT_EQ(vars.Resolve("entity", r)->lexical, "http://x/obj/42");
  EXPECT_FALSE(vars.Resolve("undefined", r).has_value());
}

TEST(VariableVectorTest, MissingFieldAbstains) {
  VariableVector vars;
  vars.DefineFieldDouble("speed", "speed");
  stream::Record r;
  EXPECT_FALSE(vars.Resolve("speed", r).has_value());
}

TEST(GraphTemplateTest, GeneratesTriplesPerPattern) {
  VariableVector vars;
  vars.DefineFieldIri("s", "id", "http://x/");
  vars.DefineFieldDouble("speed", "speed");
  GraphTemplate tmpl;
  tmpl.Add(TemplateSlot::Var("s"), TemplateSlot::Const(Iri("hasSpeed")),
           TemplateSlot::Var("speed"));
  tmpl.Add(TemplateSlot::Var("s"), TemplateSlot::Const(Iri("type")),
           TemplateSlot::Const(Iri("Node")));

  stream::Record r;
  r.Set("id", static_cast<int64_t>(1));
  r.Set("speed", 7.0);
  auto triples = tmpl.Generate(r, vars);
  ASSERT_EQ(triples.size(), 2u);
  EXPECT_EQ(triples[0].p, Iri("hasSpeed"));
}

TEST(GraphTemplateTest, SkipsPatternsWithUnresolvedVariables) {
  VariableVector vars;
  vars.DefineFieldIri("s", "id", "http://x/");
  vars.DefineFieldDouble("speed", "speed");
  GraphTemplate tmpl;
  tmpl.Add(TemplateSlot::Var("s"), TemplateSlot::Const(Iri("hasSpeed")),
           TemplateSlot::Var("speed"));
  tmpl.Add(TemplateSlot::Var("s"), TemplateSlot::Const(Iri("type")),
           TemplateSlot::Const(Iri("Node")));

  stream::Record r;
  r.Set("id", static_cast<int64_t>(1));  // no speed field
  auto triples = tmpl.Generate(r, vars);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].p, Iri("type"));
}

TEST(ConnectorTest, VectorConnectorDrains) {
  stream::Record a, b;
  a.Set("x", static_cast<int64_t>(1));
  b.Set("x", static_cast<int64_t>(2));
  VectorConnector conn({a, b});
  EXPECT_EQ(conn.Next()->GetInt("x").value(), 1);
  EXPECT_EQ(conn.Next()->GetInt("x").value(), 2);
  EXPECT_FALSE(conn.Next().has_value());
}

TEST(ConnectorTest, TransformFiltersAndMaps) {
  std::vector<stream::Record> records;
  for (int i = 0; i < 6; ++i) {
    stream::Record r;
    r.Set("x", static_cast<int64_t>(i));
    records.push_back(r);
  }
  TransformConnector conn(
      std::make_unique<VectorConnector>(records),
      [](stream::Record r) -> std::optional<stream::Record> {
        if (r.GetInt("x").value() % 2 != 0) return std::nullopt;
        r.Set("doubled", r.GetInt("x").value() * 2);
        return r;
      });
  int count = 0;
  while (auto r = conn.Next()) {
    EXPECT_EQ(r->GetInt("doubled").value(), r->GetInt("x").value() * 2);
    ++count;
  }
  EXPECT_EQ(count, 3);
}

TEST(ConnectorTest, CsvConnectorParsesTypes) {
  std::string path = testing::TempDir() + "/tcmf_rdfgen.csv";
  {
    std::ofstream out(path);
    out << "id,name,speed\n1,alpha,5.5\n2,beta,6.25\n";
  }
  auto conn = CsvConnector::Open(path);
  ASSERT_TRUE(conn.ok());
  auto r = conn.value()->Next();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->GetInt("id").value(), 1);
  EXPECT_EQ(r->GetString("name").value(), "alpha");
  EXPECT_DOUBLE_EQ(r->GetDouble("speed").value(), 5.5);
  std::remove(path.c_str());
}

TEST(ConnectorTest, CsvConnectorMissingFile) {
  EXPECT_FALSE(CsvConnector::Open("/no/such/file.csv").ok());
}

TEST(TripleGeneratorTest, RunCountsRecordsAndTriples) {
  GraphTemplate tmpl;
  VariableVector vars;
  MakePositionTemplate("http://x/", &tmpl, &vars);

  std::vector<stream::Record> records;
  for (int i = 0; i < 10; ++i) {
    Position p;
    p.entity_id = 100 + i;
    p.t = i * 1000;
    p.lon = 2.0;
    p.lat = 41.0;
    p.speed_mps = 5.0;
    p.heading_deg = 90.0;
    records.push_back(stream::PositionToRecord(p));
  }
  VectorConnector conn(std::move(records));
  TripleGenerator gen(std::move(tmpl), std::move(vars));
  Graph graph;
  size_t n = gen.Run(conn, [&](const Triple& t) { graph.Add(t); });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(gen.records_processed(), 10u);
  // 7 patterns per record.
  EXPECT_EQ(gen.triples_generated(), 70u);
  EXPECT_EQ(graph.size(), 70u);
}

TEST(TripleGeneratorTest, PositionTemplateProducesOntologyTerms) {
  GraphTemplate tmpl;
  VariableVector vars;
  MakePositionTemplate("http://x/", &tmpl, &vars);
  Position p;
  p.entity_id = 7;
  p.t = 1234;
  p.lon = 2.5;
  p.lat = 41.5;
  TripleGenerator gen(std::move(tmpl), std::move(vars));
  auto triples = gen.GenerateOne(stream::PositionToRecord(p));
  bool has_type = false, has_wkt = false;
  for (const Triple& t : triples) {
    if (t.p == Iri(vocab::kType) && t.o == Iri(vocab::kSemanticNode)) {
      has_type = true;
    }
    if (t.p == Iri(vocab::kAsWKT)) {
      has_wkt = true;
      EXPECT_EQ(t.o.datatype, vocab::kWktLiteral);
      EXPECT_TRUE(t.o.lexical.find("POINT") == 0);
    }
  }
  EXPECT_TRUE(has_type);
  EXPECT_TRUE(has_wkt);
}

TEST(TripleGeneratorTest, WeatherTemplate) {
  GraphTemplate tmpl;
  VariableVector vars;
  MakeWeatherTemplate("http://x/", &tmpl, &vars);
  stream::Record r;
  r.Set("t", static_cast<int64_t>(3600000));
  r.Set("lon", 2.0);
  r.Set("lat", 40.0);
  r.Set("wind_east_mps", 3.0);
  r.Set("wind_north_mps", 4.0);
  r.Set("severity", 0.2);
  r.Set("wave_height_m", 1.5);
  TripleGenerator gen(std::move(tmpl), std::move(vars));
  auto triples = gen.GenerateOne(r);
  EXPECT_EQ(triples.size(), 6u);
  bool wind_ok = false;
  for (const Triple& t : triples) {
    if (t.p == Iri(vocab::kHasWindSpeed)) {
      EXPECT_EQ(t.o.lexical, "5");  // hypot(3,4)
      wind_ok = true;
    }
  }
  EXPECT_TRUE(wind_ok);
}



// --------------------------------------------------- SemanticTrajectory

class SemanticTrajectoryTest : public ::testing::Test {
 protected:
  static synopses::CriticalPoint CP(TimeMs t,
                                    synopses::CriticalPointType type) {
    synopses::CriticalPoint cp;
    cp.pos.entity_id = 42;
    cp.pos.t = t;
    cp.pos.lon = 2.0 + t / 1e6;
    cp.pos.lat = 40.0;
    cp.type = type;
    return cp;
  }
};

TEST_F(SemanticTrajectoryTest, BuildsFigureThreeStructure) {
  using synopses::CriticalPointType;
  std::vector<synopses::CriticalPoint> cps = {
      CP(0, CriticalPointType::kStart),
      CP(1000, CriticalPointType::kChangeInHeading),
      CP(2000, CriticalPointType::kStop),
      CP(3000, CriticalPointType::kStopEnd),  // new part
      CP(4000, CriticalPointType::kSpeedChange),
      CP(5000, CriticalPointType::kEnd),
  };
  Graph graph;
  SemanticTrajectoryStats stats =
      BuildSemanticTrajectory("http://x/", 42, cps, &graph);
  EXPECT_EQ(stats.trajectories, 1u);
  EXPECT_EQ(stats.parts, 2u);  // split at the stop end
  EXPECT_EQ(stats.nodes, 6u);
  EXPECT_EQ(stats.triples, graph.size());

  // Trajectory -> hasPart -> part -> hasNode -> node chain queryable.
  auto rows = EvaluateBgp(
      graph,
      {{PatternTerm::Var("traj"), PatternTerm::Const(Iri(vocab::kType)),
        PatternTerm::Const(Iri(vocab::kTrajectory))},
       {PatternTerm::Var("traj"), PatternTerm::Const(Iri(vocab::kHasPart)),
        PatternTerm::Var("part")},
       {PatternTerm::Var("part"), PatternTerm::Const(Iri(vocab::kHasNode)),
        PatternTerm::Var("node")}});
  EXPECT_EQ(rows.size(), 6u);  // every node reachable from the trajectory
}

TEST_F(SemanticTrajectoryTest, EventsAnnotateNodes) {
  using synopses::CriticalPointType;
  std::vector<synopses::CriticalPoint> cps = {
      CP(0, CriticalPointType::kStart),
      CP(1000, CriticalPointType::kChangeInHeading),
  };
  Graph graph;
  BuildSemanticTrajectory("http://x/", 42, cps, &graph);
  auto rows = EvaluateBgp(
      graph,
      {{PatternTerm::Var("e"), PatternTerm::Const(Iri(vocab::kEventType)),
        PatternTerm::Const(Literal("change_in_heading"))},
       {PatternTerm::Var("e"), PatternTerm::Const(Iri(vocab::kOccurs)),
        PatternTerm::Var("n")}});
  ASSERT_EQ(rows.size(), 1u);
}

TEST_F(SemanticTrajectoryTest, EmptyInputIsNoop) {
  Graph graph;
  SemanticTrajectoryStats stats =
      BuildSemanticTrajectory("http://x/", 42, {}, &graph);
  EXPECT_EQ(stats.trajectories, 0u);
  EXPECT_EQ(graph.size(), 0u);
}

TEST_F(SemanticTrajectoryTest, GapsAndTakeoffsOpenParts) {
  using synopses::CriticalPointType;
  std::vector<synopses::CriticalPoint> cps = {
      CP(0, CriticalPointType::kStart),
      CP(1000, CriticalPointType::kGapStart),
      CP(60000, CriticalPointType::kGapEnd),    // new part
      CP(70000, CriticalPointType::kTakeoff),   // new part
      CP(80000, CriticalPointType::kLanding),
  };
  Graph graph;
  SemanticTrajectoryStats stats =
      BuildSemanticTrajectory("http://x/", 7, cps, &graph);
  EXPECT_EQ(stats.parts, 3u);
}


// ---------------------------------------------------------------- SPARQL

class SparqlTest : public ::testing::Test {
 protected:
  SparqlTest() {
    auto add_node = [&](int i, double speed) {
      Term node = Iri("http://x/n/" + std::to_string(i));
      graph_.Add({node, Iri(vocab::kType), Iri(vocab::kSemanticNode)});
      graph_.Add({node, Iri(vocab::kHasSpeed), DoubleLiteral(speed)});
      graph_.Add({node, Iri(vocab::kHasTimestamp),
                  IntLiteral(1000 * i)});
    };
    add_node(0, 2.0);
    add_node(1, 5.0);
    add_node(2, 8.0);
    add_node(3, 11.0);
  }
  Graph graph_;
};

TEST_F(SparqlTest, SelectWithPrefixAndType) {
  auto result = RunSparql(graph_, R"(
    PREFIX dc: <http://www.datacron-project.eu/datAcron#>
    SELECT ?n ?v
    WHERE {
      ?n a dc:SemanticNode .
      ?n dc:hasSpeed ?v .
    }
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().vars, (std::vector<std::string>{"n", "v"}));
  EXPECT_EQ(result.value().rows.size(), 4u);
}

TEST_F(SparqlTest, NumericFiltersApply) {
  auto result = RunSparql(graph_, R"(
    PREFIX dc: <http://www.datacron-project.eu/datAcron#>
    SELECT ?n WHERE {
      ?n dc:hasSpeed ?v .
      FILTER(?v >= 4.0 && ?v < 10)
    }
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 2u);  // speeds 5 and 8
}

TEST_F(SparqlTest, MultipleFilterClauses) {
  auto result = RunSparql(graph_, R"(
    PREFIX dc: <http://www.datacron-project.eu/datAcron#>
    SELECT ?n WHERE {
      ?n dc:hasSpeed ?v .
      ?n dc:hasTimestamp ?t .
      FILTER(?v > 1)
      FILTER(?t <= 2000)
    }
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 3u);  // t in {0,1000,2000}
}

TEST_F(SparqlTest, SelectStarProjectsAllVariables) {
  auto result = RunSparql(graph_, R"(
    PREFIX dc: <http://www.datacron-project.eu/datAcron#>
    SELECT * WHERE { ?n dc:hasSpeed ?v . }
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().vars, (std::vector<std::string>{"n", "v"}));
}

TEST_F(SparqlTest, ExplicitIriAndLiteralTerms) {
  graph_.Add({Iri("http://x/n/0"), Iri("http://x/flag"), Literal("GR")});
  auto result = RunSparql(graph_, R"(
    SELECT ?n WHERE { ?n <http://x/flag> "GR" . }
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].lexical, "http://x/n/0");
}

TEST_F(SparqlTest, CommentsIgnored) {
  auto result = RunSparql(graph_, R"(
    # find fast nodes
    PREFIX dc: <http://www.datacron-project.eu/datAcron#>
    SELECT ?n WHERE {
      ?n dc:hasSpeed ?v .  # the speed annotation
      FILTER(?v > 10)
    }
  )");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 1u);
}

TEST_F(SparqlTest, ParseErrors) {
  EXPECT_FALSE(RunSparql(graph_, "SELECT ?n WHERE { }").ok());
  EXPECT_FALSE(RunSparql(graph_, "SELECT ?n { ?n dc:x ?v . }").ok());
  EXPECT_FALSE(RunSparql(graph_, "WHERE { ?a ?b ?c . }").ok());
  EXPECT_FALSE(
      RunSparql(graph_, "SELECT ?n WHERE { ?n <http://x/p ?v . }").ok());
  EXPECT_FALSE(RunSparql(
                   graph_,
                   "SELECT ?n WHERE { ?n <http://x/p> ?v . FILTER(?v ~ 3) }")
                   .ok());
  EXPECT_FALSE(
      RunSparql(graph_, "SELECT ?n WHERE { ?n <http://x/p> ?v .").ok());
}

TEST_F(SparqlTest, FilterOnNonNumericBindingRejectsRow) {
  graph_.Add({Iri("http://x/n/0"), Iri("http://x/name"), Literal("alpha")});
  auto result = RunSparql(graph_, R"(
    SELECT ?n WHERE {
      ?n <http://x/name> ?name .
      FILTER(?name > 0)
    }
  )");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rows.empty());
}

// -------------------------------------------------------------- NTriples

TEST(NTriplesTest, TermForms) {
  EXPECT_EQ(ToNTriplesTerm(Iri("http://x/a")), "<http://x/a>");
  EXPECT_EQ(ToNTriplesTerm(Literal("v")), "\"v\"");
  EXPECT_EQ(ToNTriplesTerm(Blank("b1")), "_:b1");
  EXPECT_EQ(ToNTriplesTerm(TypedLiteral("5", "http://x/int")),
            "\"5\"^^<http://x/int>");
}

TEST(NTriplesTest, EscapingRoundTrip) {
  Triple t{Iri("s"), Iri("p"),
           Literal("line1\nline2 \"quoted\" back\\slash\ttab")};
  auto parsed = ParseNTriplesLine(ToNTriplesLine(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), t);
}

TEST(NTriplesTest, ParseLineForms) {
  auto t = ParseNTriplesLine(
      "<http://x/s> <http://x/p> \"3.5\"^^<http://x/d> .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().o.datatype, "http://x/d");
  auto b = ParseNTriplesLine("_:n1 <http://x/p> <http://x/o> .");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().s.kind, Term::Kind::kBlank);
}

TEST(NTriplesTest, CommentsAndBlanksSkipped) {
  EXPECT_EQ(ParseNTriplesLine("# a comment").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseNTriplesLine("   ").status().code(), StatusCode::kNotFound);
}

TEST(NTriplesTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> <o>").ok());  // no dot
  EXPECT_FALSE(ParseNTriplesLine("<s <p> <o> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> \"unterminated .").ok());
}

TEST(NTriplesTest, GraphFileRoundTrip) {
  Graph graph;
  graph.Add({Iri("http://x/v1"), Iri("http://x/type"), Iri("http://x/V")});
  graph.Add({Iri("http://x/v1"), Iri("http://x/name"), Literal("alpha")});
  graph.Add({Iri("http://x/v1"), Iri("http://x/speed"), DoubleLiteral(5.5)});
  std::string path = testing::TempDir() + "/tcmf_graph.nt";
  ASSERT_TRUE(WriteNTriples(graph, path).ok());
  Graph loaded;
  auto n = ReadNTriples(path, &loaded);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 3u);
  EXPECT_EQ(loaded.size(), graph.size());
  Term v1 = Iri("http://x/v1");
  EXPECT_EQ(loaded.MatchDecoded(&v1, nullptr, nullptr).size(), 3u);
  std::remove(path.c_str());
}

TEST(NTriplesTest, ReadMissingFileFails) {
  Graph g;
  EXPECT_FALSE(ReadNTriples("/no/such/file.nt", &g).ok());
}

}  // namespace
}  // namespace tcmf::rdf
