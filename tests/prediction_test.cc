#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "geom/geo.h"
#include "prediction/clustering.h"
#include "prediction/cpa.h"
#include "scenario/fleet.h"
#include "stream/record.h"
#include "prediction/erp.h"
#include "prediction/hmm.h"
#include "prediction/linalg.h"
#include "prediction/rmf.h"
#include "prediction/trajpred.h"

namespace tcmf::prediction {
namespace {

// ---------------------------------------------------------------- Linalg

TEST(LinalgTest, SolvesSimpleSystem) {
  std::vector<std::vector<double>> a = {{2, 1}, {1, 3}};
  std::vector<double> b = {5, 10};
  ASSERT_TRUE(SolveLinearSystem(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(LinalgTest, DetectsSingularSystem) {
  std::vector<std::vector<double>> a = {{1, 2}, {2, 4}};
  std::vector<double> b = {3, 6};
  EXPECT_FALSE(SolveLinearSystem(a, b));
}

TEST(LinalgTest, PivotingHandlesZeroDiagonal) {
  std::vector<std::vector<double>> a = {{0, 1}, {1, 0}};
  std::vector<double> b = {2, 3};
  ASSERT_TRUE(SolveLinearSystem(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-9);
  EXPECT_NEAR(b[1], 2.0, 1e-9);
}

TEST(LinalgTest, LeastSquaresExactFit) {
  // y = 2 + 3x fitted from exact samples.
  std::vector<std::vector<double>> m;
  std::vector<double> y;
  for (double x : {0.0, 1.0, 2.0, 3.0}) {
    m.push_back({1.0, x});
    y.push_back(2.0 + 3.0 * x);
  }
  auto c = LeastSquares(m, y);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 2.0, 1e-6);
  EXPECT_NEAR(c[1], 3.0, 1e-6);
}

TEST(LinalgTest, LeastSquaresOverdeterminedNoisy) {
  Rng rng(1);
  std::vector<std::vector<double>> m;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    double x = i * 0.1;
    m.push_back({1.0, x});
    y.push_back(5.0 - 2.0 * x + rng.Gaussian(0, 0.1));
  }
  auto c = LeastSquares(m, y);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 5.0, 0.1);
  EXPECT_NEAR(c[1], -2.0, 0.05);
}

TEST(LinalgTest, LeastSquaresUnderdeterminedFails) {
  EXPECT_TRUE(LeastSquares({{1.0, 2.0}}, {1.0}).empty());
}

// ---------------------------------------------------------- Trajectories

/// Straight flight at constant velocity.
std::vector<Position> StraightTrack(int count, TimeMs dt_ms,
                                    double speed = 200.0,
                                    double heading = 90.0) {
  std::vector<Position> out;
  geom::LonLat pos{0.0, 40.0};
  for (int i = 0; i < count; ++i) {
    Position p;
    p.entity_id = 1;
    p.t = i * dt_ms;
    p.lon = pos.lon;
    p.lat = pos.lat;
    p.speed_mps = speed;
    p.heading_deg = heading;
    out.push_back(p);
    pos = geom::Destination(pos, heading,
                            speed * static_cast<double>(dt_ms) / 1000.0);
  }
  return out;
}

/// Constant-rate turn (deg/s).
std::vector<Position> TurningTrack(int count, TimeMs dt_ms, double speed,
                                   double turn_rate_deg_s) {
  std::vector<Position> out;
  geom::LonLat pos{0.0, 40.0};
  double heading = 0.0;
  for (int i = 0; i < count; ++i) {
    Position p;
    p.entity_id = 1;
    p.t = i * dt_ms;
    p.lon = pos.lon;
    p.lat = pos.lat;
    p.speed_mps = speed;
    p.heading_deg = heading;
    out.push_back(p);
    double dt = static_cast<double>(dt_ms) / 1000.0;
    heading = geom::NormalizeDeg(heading + turn_rate_deg_s * dt);
    pos = geom::Destination(pos, heading, speed * dt);
  }
  return out;
}

double PredictError(const std::vector<PredictedPoint>& predicted,
                    const std::vector<Position>& truth, size_t start) {
  double sum = 0;
  size_t n = 0;
  for (size_t i = 0; i < predicted.size() && start + i < truth.size(); ++i) {
    sum += geom::HaversineM(predicted[i].loc.lon, predicted[i].loc.lat,
                            truth[start + i].lon, truth[start + i].lat);
    ++n;
  }
  return n ? sum / n : 1e18;
}

// ------------------------------------------------------------------- RMF

TEST(RmfTest, PredictsStraightMotionAccurately) {
  auto track = StraightTrack(40, 8000);
  RmfPredictor rmf(3, 12);
  for (size_t i = 0; i < 30; ++i) rmf.Observe(track[i]);
  ASSERT_TRUE(rmf.ready());
  auto predicted = rmf.Predict(8);
  ASSERT_EQ(predicted.size(), 8u);
  EXPECT_LT(PredictError(predicted, track, 30), 100.0);
}

TEST(RmfTest, NotReadyWithFewPoints) {
  RmfPredictor rmf(3, 12);
  auto track = StraightTrack(2, 8000);
  rmf.Observe(track[0]);
  rmf.Observe(track[1]);
  EXPECT_FALSE(rmf.ready());
}

TEST(RmfTest, PredictionTimesAdvanceByInterval) {
  auto track = StraightTrack(30, 8000);
  RmfPredictor rmf;
  for (const auto& p : track) rmf.Observe(p);
  auto predicted = rmf.Predict(3);
  ASSERT_EQ(predicted.size(), 3u);
  EXPECT_EQ(predicted[0].t, track.back().t + 8000);
  EXPECT_EQ(predicted[2].t, track.back().t + 24000);
}

TEST(RmfTest, IgnoresNonMonotoneInput) {
  auto track = StraightTrack(20, 8000);
  RmfPredictor rmf;
  for (const auto& p : track) rmf.Observe(p);
  rmf.Observe(track[5]);  // stale: ignored
  auto predicted = rmf.Predict(2);
  EXPECT_EQ(predicted[0].t, track.back().t + 8000);
}

TEST(RmfStarTest, LinearModeOnStraightTrack) {
  auto track = StraightTrack(30, 8000);
  RmfStarPredictor star;
  for (const auto& p : track) star.Observe(p);
  EXPECT_EQ(star.mode(), MotionMode::kLinear);
  auto predicted = star.Predict(8);
  EXPECT_LT(PredictError(predicted, StraightTrack(60, 8000), 30), 100.0);
}

TEST(RmfStarTest, PatternModeDuringTurn) {
  auto track = TurningTrack(40, 8000, 200.0, 1.0);
  RmfStarPredictor star;
  for (const auto& p : track) star.Observe(p);
  EXPECT_EQ(star.mode(), MotionMode::kPattern);
}

TEST(RmfStarTest, CircularPrimitiveBeatsBaselineOnTurn) {
  auto track = TurningTrack(60, 8000, 200.0, 1.0);
  RmfStarPredictor star;
  RmfPredictor rmf(3, 12);
  for (size_t i = 0; i < 40; ++i) {
    star.Observe(track[i]);
    rmf.Observe(track[i]);
  }
  double star_err = PredictError(star.Predict(8), track, 40);
  double rmf_err = PredictError(rmf.Predict(8), track, 40);
  // RMF* should track the turn clearly better than the raw recurrence.
  EXPECT_LT(star_err, rmf_err);
  EXPECT_LT(star_err, 2000.0);
}

TEST(RmfStarTest, HintForcesPatternMode) {
  auto track = StraightTrack(20, 8000);
  RmfStarPredictor star;
  for (const auto& p : track) star.Observe(p);
  EXPECT_EQ(star.mode(), MotionMode::kLinear);
  star.HintNonLinear();
  Position next = track.back();
  next.t += 8000;
  star.Observe(next);
  EXPECT_EQ(star.mode(), MotionMode::kPattern);
}

TEST(RmfStarTest, AltitudePredictionFollowsVrate) {
  std::vector<Position> climb = StraightTrack(30, 8000);
  for (size_t i = 0; i < climb.size(); ++i) {
    climb[i].alt_m = 1000.0 + i * 80.0;  // 10 m/s climb at 8 s interval
    climb[i].vrate_mps = 10.0;
  }
  RmfStarPredictor star;
  for (const auto& p : climb) star.Observe(p);
  auto predicted = star.Predict(4);
  EXPECT_NEAR(predicted[3].alt_m, climb.back().alt_m + 4 * 80.0, 40.0);
}

// ------------------------------------------------------------------- ERP

EnrichedPoint EP(double lon, double lat, std::vector<double> f = {}) {
  EnrichedPoint p;
  p.loc = {lon, lat};
  p.features = std::move(f);
  return p;
}

TEST(ErpTest, IdenticalSequencesAtZero) {
  EnrichedSequence a = {EP(0, 40), EP(1, 40), EP(2, 40)};
  ErpOptions options;
  EXPECT_NEAR(ErpDistance(a, a, options), 0.0, 1e-12);
}

TEST(ErpTest, SymmetricDistance) {
  EnrichedSequence a = {EP(0, 40), EP(1, 40)};
  EnrichedSequence b = {EP(0, 40.5), EP(1, 40.5), EP(2, 41)};
  ErpOptions options;
  EXPECT_DOUBLE_EQ(ErpDistance(a, b, options), ErpDistance(b, a, options));
}

TEST(ErpTest, EmptySequenceCostsGapPenalty) {
  EnrichedSequence a = {EP(0, 40), EP(1, 40)};
  ErpOptions options;
  options.gap_penalty = 2.0;
  EXPECT_DOUBLE_EQ(ErpDistance(a, {}, options), 4.0);
  EXPECT_DOUBLE_EQ(ErpDistance({}, {}, options), 0.0);
}

TEST(ErpTest, TriangleInequalityOnSamples) {
  // ERP is a metric; verify the triangle inequality over random triples.
  Rng rng(4);
  ErpOptions options;
  for (int trial = 0; trial < 50; ++trial) {
    auto make_seq = [&] {
      EnrichedSequence s;
      int n = static_cast<int>(rng.UniformInt(1, 6));
      for (int i = 0; i < n; ++i) {
        s.push_back(EP(rng.Uniform(0, 2), rng.Uniform(39, 41),
                       {rng.Uniform(0, 1)}));
      }
      return s;
    };
    EnrichedSequence a = make_seq(), b = make_seq(), c = make_seq();
    double ab = ErpDistance(a, b, options);
    double bc = ErpDistance(b, c, options);
    double ac = ErpDistance(a, c, options);
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

TEST(ErpTest, FeatureDifferencesContribute) {
  EnrichedSequence a = {EP(0, 40, {0.0})};
  EnrichedSequence same_space = {EP(0, 40, {1.0})};
  ErpOptions options;
  EXPECT_GT(ErpDistance(a, same_space, options), 0.5);
}

TEST(ErpTest, MissingFeaturesPenalized) {
  ErpOptions options;
  EnrichedPoint with = EP(0, 40, {0.3, 0.4});
  EnrichedPoint without = EP(0, 40, {});
  EXPECT_GT(EnrichedPointDistance(with, without, options), 1.0);
}

// ------------------------------------------------------------ Clustering

TEST(OpticsTest, SeparatesTwoBlobs) {
  // 1-D points: blob at 0 and blob at 100.
  std::vector<double> points;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) points.push_back(rng.Gaussian(0, 1));
  for (int i = 0; i < 20; ++i) points.push_back(rng.Gaussian(100, 1));
  DistanceFn dist = [&](size_t i, size_t j) {
    return std::fabs(points[i] - points[j]);
  };
  OpticsOptions options;
  options.min_pts = 4;
  auto result = RunOptics(points.size(), dist, options);
  auto labels = ExtractClusters(result, 5.0, 3);
  EXPECT_EQ(ClusterCount(labels), 2);
  // All of blob 1 shares a label; all of blob 2 shares another.
  for (int i = 1; i < 20; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(labels[i], labels[20]);
  EXPECT_NE(labels[0], labels[20]);
}

TEST(OpticsTest, NoiseGetsMinusOne) {
  std::vector<double> points;
  Rng rng(6);
  for (int i = 0; i < 20; ++i) points.push_back(rng.Gaussian(0, 1));
  points.push_back(1000.0);  // isolated outlier
  DistanceFn dist = [&](size_t i, size_t j) {
    return std::fabs(points[i] - points[j]);
  };
  auto result = RunOptics(points.size(), dist, {.eps = 50.0, .min_pts = 4});
  auto labels = ExtractClusters(result, 5.0, 3);
  EXPECT_EQ(labels.back(), -1);
}

TEST(OpticsTest, OrderingVisitsAllItems) {
  DistanceFn dist = [](size_t i, size_t j) {
    return std::fabs(static_cast<double>(i) - static_cast<double>(j));
  };
  auto result = RunOptics(10, dist, {.eps = 100.0, .min_pts = 2});
  EXPECT_EQ(result.ordering.size(), 10u);
  std::vector<bool> seen(10, false);
  for (size_t i : result.ordering) seen[i] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(OpticsTest, EmptyInput) {
  DistanceFn dist = [](size_t, size_t) { return 0.0; };
  auto result = RunOptics(0, dist, {});
  EXPECT_TRUE(result.ordering.empty());
  EXPECT_TRUE(ExtractClusters(result, 1.0).empty());
}

TEST(OpticsTest, MedoidMinimizesSummedDistance) {
  std::vector<double> points = {0.0, 1.0, 2.0, 10.0};
  std::vector<int> labels = {0, 0, 0, -1};
  DistanceFn dist = [&](size_t i, size_t j) {
    return std::fabs(points[i] - points[j]);
  };
  EXPECT_EQ(ClusterMedoid(labels, 0, dist), 1u);
  EXPECT_EQ(ClusterMedoid(labels, 5, dist),
            std::numeric_limits<size_t>::max());
}

// ------------------------------------------------------------------- HMM

TEST(HmmTest, ForwardLikelihoodNormalized) {
  // For a 1-state HMM, the sequence likelihood is the product of emission
  // probabilities.
  Hmm hmm(1, 2);
  double ll = hmm.LogLikelihood({0, 1, 0});
  EXPECT_NEAR(ll, 3 * std::log(0.5), 1e-9);
}

TEST(HmmTest, TrainingRecoversBiasedCoin) {
  // Observations: mostly symbol 0 -> emission prob of 0 should grow.
  Rng rng(7);
  Hmm hmm(1, 2);
  hmm.InitRandom(rng);
  std::vector<std::vector<int>> seqs;
  for (int s = 0; s < 10; ++s) {
    std::vector<int> seq;
    for (int i = 0; i < 50; ++i) seq.push_back(rng.Bernoulli(0.8) ? 0 : 1);
    seqs.push_back(seq);
  }
  hmm.Train(seqs, 20);
  EXPECT_NEAR(hmm.emissions()[0][0], 0.8, 0.05);
}

TEST(HmmTest, TrainingImprovesLikelihood) {
  Rng rng(8);
  // Two alternating regimes: symbol runs of 0s then 1s.
  std::vector<std::vector<int>> seqs;
  for (int s = 0; s < 5; ++s) {
    std::vector<int> seq;
    for (int block = 0; block < 6; ++block) {
      int sym = block % 2;
      for (int i = 0; i < 8; ++i) seq.push_back(sym);
    }
    seqs.push_back(seq);
  }
  Hmm hmm(2, 2);
  hmm.InitRandom(rng);
  double before = 0;
  for (const auto& s : seqs) before += hmm.LogLikelihood(s);
  hmm.Train(seqs, 30);
  double after = 0;
  for (const auto& s : seqs) after += hmm.LogLikelihood(s);
  EXPECT_GT(after, before);
}

TEST(HmmTest, ViterbiTracksRegimes) {
  // Deterministic-ish two-state chain with distinct emissions.
  Rng rng(9);
  std::vector<std::vector<int>> seqs;
  for (int s = 0; s < 8; ++s) {
    std::vector<int> seq;
    for (int block = 0; block < 4; ++block) {
      for (int i = 0; i < 10; ++i) seq.push_back(block % 2);
    }
    seqs.push_back(seq);
  }
  Hmm hmm(2, 2);
  hmm.InitRandom(rng);
  hmm.Train(seqs, 40);
  auto path = hmm.Viterbi(seqs[0]);
  ASSERT_EQ(path.size(), seqs[0].size());
  // Within each block the state should be constant.
  for (int block = 0; block < 4; ++block) {
    for (int i = 1; i < 10; ++i) {
      EXPECT_EQ(path[block * 10 + i], path[block * 10]);
    }
  }
  // And adjacent blocks should differ.
  EXPECT_NE(path[0], path[10]);
}

TEST(HmmTest, PredictObservationSumsToOne) {
  Rng rng(10);
  Hmm hmm(3, 4);
  hmm.InitRandom(rng);
  for (int ahead = 1; ahead <= 5; ++ahead) {
    auto dist = hmm.PredictObservation({0, 1, 2}, ahead);
    double sum = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(HmmTest, PredictExpectedValueUsesSymbolValues) {
  Hmm hmm(1, 2);  // uniform emissions
  double expect = hmm.PredictExpectedValue({}, 1, {0.0, 10.0});
  EXPECT_NEAR(expect, 5.0, 1e-9);
}

TEST(HmmTest, ImpossiblePrefixGivesNegInfLikelihood) {
  Rng rng(11);
  std::vector<std::vector<int>> seqs = {{0, 0, 0, 0, 0, 0, 0, 0}};
  Hmm hmm(1, 2);
  hmm.InitRandom(rng);
  hmm.Train(seqs, 50);
  // Symbol 1 never seen: probability ~0 but smoothed, so finite.
  EXPECT_LT(hmm.LogLikelihood({1, 1, 1}), hmm.LogLikelihood({0, 0, 0}));
}

TEST(QuantizeTest, RoundTripCenters) {
  for (int b = 0; b < 10; ++b) {
    double center = BucketCenter(b, -100, 100, 10);
    EXPECT_EQ(Quantize(center, -100, 100, 10), b);
  }
}

TEST(QuantizeTest, Clamping) {
  EXPECT_EQ(Quantize(-1e9, -100, 100, 10), 0);
  EXPECT_EQ(Quantize(1e9, -100, 100, 10), 9);
}

// ------------------------------------------------------ WaypointDeviations

TEST(WaypointDeviationsTest, OnPlanFlightHasSmallDeviations) {
  // Actual exactly follows the plan waypoints.
  std::vector<geom::LonLat> wps = {{0, 40}, {0.5, 40}, {1.0, 40}, {1.5, 40}};
  std::vector<TimeMs> etas = {0, 100000, 200000, 300000};
  Trajectory actual;
  actual.entity_id = 1;
  for (int i = 0; i < 31; ++i) {
    Position p;
    p.t = i * 10000;
    p.lon = 1.5 * i / 30.0;
    p.lat = 40.0;
    actual.points.push_back(p);
  }
  auto devs = WaypointDeviations(wps, etas, actual);
  ASSERT_EQ(devs.size(), 4u);
  for (double d : devs) EXPECT_LT(std::fabs(d), 300.0);
}

TEST(WaypointDeviationsTest, LateralOffsetHasCorrectSignAndMagnitude) {
  // Eastbound plan; actual flies ~1.1 km south (right of course).
  std::vector<geom::LonLat> wps = {{0, 40}, {0.5, 40}, {1.0, 40}};
  std::vector<TimeMs> etas = {0, 100000, 200000};
  Trajectory actual;
  for (int i = 0; i <= 20; ++i) {
    Position p;
    p.t = i * 10000;
    p.lon = i / 20.0;
    p.lat = 40.0 - 0.01;  // south of track
    actual.points.push_back(p);
  }
  auto devs = WaypointDeviations(wps, etas, actual);
  ASSERT_EQ(devs.size(), 3u);
  EXPECT_NEAR(devs[1], 1112.0, 60.0);  // 0.01 deg lat
  EXPECT_GT(devs[1], 0.0);             // right of eastbound course = south
}

// -------------------------------------------------------------- HybridTp

/// Synthesizes TP examples in `clusters` groups. Cluster k flies along
/// latitude 40+k with deviation dynamics characteristic of the cluster
/// (a distinct mean deviation pattern learnable by its HMM).
std::vector<TpExample> MakeExamples(int clusters, int per_cluster,
                                    int waypoints, Rng& rng) {
  std::vector<TpExample> out;
  for (int c = 0; c < clusters; ++c) {
    for (int e = 0; e < per_cluster; ++e) {
      TpExample ex;
      for (int w = 0; w < waypoints; ++w) {
        EnrichedPoint p;
        p.loc = {w * 0.5, 40.0 + c * 2.0};
        p.t = w * 100000;
        p.features = {static_cast<double>(c) / clusters};
        ex.reference.push_back(p);
        // Cluster-specific deviation signature + noise.
        double base = (c % 2 == 0 ? 1.0 : -1.0) * (500.0 + 250.0 * (w % 3));
        ex.deviations_m.push_back(base + rng.Gaussian(0, 100.0));
      }
      out.push_back(std::move(ex));
    }
  }
  return out;
}

TEST(HybridTpTest, RecoversPlantedClusters) {
  Rng rng(12);
  auto examples = MakeExamples(3, 8, 6, rng);
  HybridTpOptions options;
  options.reachability_threshold = 5.0;
  HybridTpModel model = HybridTpModel::Train(examples, options);
  EXPECT_EQ(model.cluster_count(), 3);
  // Same-group examples share labels.
  const auto& labels = model.training_labels();
  for (int c = 0; c < 3; ++c) {
    for (int e = 1; e < 8; ++e) {
      EXPECT_EQ(labels[c * 8 + e], labels[c * 8]);
    }
  }
}

TEST(HybridTpTest, AssignsNewFlightToRightCluster) {
  Rng rng(13);
  auto examples = MakeExamples(3, 8, 6, rng);
  HybridTpOptions options;
  options.reachability_threshold = 5.0;
  HybridTpModel model = HybridTpModel::Train(examples, options);
  // A new flight shaped like cluster 1.
  auto probe = MakeExamples(3, 1, 6, rng)[1];
  int assigned = model.AssignCluster(probe.reference);
  EXPECT_EQ(assigned, model.training_labels()[1 * 8]);
}

TEST(HybridTpTest, PredictsDeviationSignature) {
  Rng rng(14);
  auto examples = MakeExamples(2, 12, 6, rng);
  HybridTpOptions options;
  options.reachability_threshold = 5.0;
  HybridTpModel model = HybridTpModel::Train(examples, options);
  auto probe = MakeExamples(2, 1, 6, rng)[0];  // cluster 0 signature
  auto predicted = model.PredictDeviations(probe.reference, {});
  ASSERT_EQ(predicted.size(), 6u);
  double rmse = 0;
  for (size_t i = 0; i < 6; ++i) {
    double err = predicted[i] - probe.deviations_m[i];
    rmse += err * err;
  }
  rmse = std::sqrt(rmse / 6);
  // Deviations are ~500-1000 m; prediction should land within a few
  // hundred meters RMSE.
  EXPECT_LT(rmse, 450.0);
}

TEST(HybridTpTest, ObservedPrefixPassedThrough) {
  Rng rng(15);
  auto examples = MakeExamples(1, 10, 5, rng);
  HybridTpModel model = HybridTpModel::Train(examples, HybridTpOptions{});
  auto probe = examples[0];
  std::vector<double> prefix = {111.0, 222.0};
  auto predicted = model.PredictDeviations(probe.reference, prefix);
  EXPECT_DOUBLE_EQ(predicted[0], 111.0);
  EXPECT_DOUBLE_EQ(predicted[1], 222.0);
}

TEST(HybridTpTest, EmptyTrainingSetSafe) {
  HybridTpModel model = HybridTpModel::Train({}, HybridTpOptions{});
  EXPECT_EQ(model.cluster_count(), 0);
  EXPECT_EQ(model.AssignCluster({}), -1);
}

TEST(HybridTpTest, ParameterCountScalesWithClusters) {
  Rng rng(16);
  auto examples = MakeExamples(3, 8, 6, rng);
  HybridTpOptions options;
  options.reachability_threshold = 5.0;
  HybridTpModel model = HybridTpModel::Train(examples, options);
  size_t per_cluster = options.hmm_states * options.hmm_states +
                       options.hmm_states * options.deviation_buckets +
                       options.hmm_states;
  EXPECT_EQ(model.TotalParameters(),
            per_cluster * static_cast<size_t>(model.cluster_count()));
}

// -------------------------------------------------------------- BlindHmm

TEST(BlindHmmTest, TrainsAndPredictsWithinExtent) {
  Rng rng(17);
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 6; ++i) {
    Trajectory t;
    t.entity_id = i;
    auto track = StraightTrack(40, 8000);
    t.points = track;
    trajs.push_back(t);
  }
  BlindHmmTp::Options options;
  options.extent = {-1.0, 39.0, 4.0, 42.0};
  options.grid_side = 12;
  options.hmm_states = 4;
  options.hmm_iterations = 4;
  BlindHmmTp model = BlindHmmTp::Train(trajs, options);
  EXPECT_GT(model.training_observations(), 200u);

  Trajectory prefix;
  prefix.points.assign(trajs[0].points.begin(), trajs[0].points.begin() + 20);
  geom::LonLat predicted = model.PredictPosition(prefix, 4);
  EXPECT_GE(predicted.lon, options.extent.min_lon);
  EXPECT_LE(predicted.lon, options.extent.max_lon);
}

TEST(BlindHmmTest, ParameterCountOrdersOfMagnitudeLarger) {
  // The resource comparison of Section 5: a blind HMM over grid cells has
  // vastly more parameters than a hybrid cluster model.
  BlindHmmTp::Options options;
  options.extent = {-1.0, 39.0, 4.0, 42.0};
  options.grid_side = 24;
  options.hmm_states = 8;
  options.hmm_iterations = 1;
  Trajectory t;
  t.points = StraightTrack(30, 8000);
  BlindHmmTp blind = BlindHmmTp::Train({t}, options);

  HybridTpOptions hybrid_options;
  size_t hybrid_params = hybrid_options.hmm_states * hybrid_options.hmm_states +
                         hybrid_options.hmm_states * hybrid_options.deviation_buckets +
                         hybrid_options.hmm_states;
  EXPECT_GT(blind.TotalParameters(), 50 * hybrid_params);
}

TEST(BlindHmmTest, CellRoundTrip) {
  BlindHmmTp::Options options;
  options.extent = {0.0, 0.0, 10.0, 10.0};
  options.grid_side = 10;
  options.hmm_iterations = 0;
  Trajectory t;
  t.points = StraightTrack(5, 8000);
  BlindHmmTp model = BlindHmmTp::Train({t}, options);
  int cell = model.CellOf(5.5, 7.5);
  geom::LonLat center = model.CellCenter(cell);
  EXPECT_NEAR(center.lon, 5.5, 0.51);
  EXPECT_NEAR(center.lat, 7.5, 0.51);
}

// --------------------------------------------------------- CPA backends

// Scan, grid and rtree backends must produce identical warning streams
// and identical pairs_evaluated counts on a realistic seeded fleet —
// the SpatialIndex exact-filter contract applied to CPA pair pruning.
TEST(CpaBackendEquivTest, IdenticalWarningsOnSeededFleet) {
  scenario::FleetMix mix;
  mix.vessel_count = 50;
  mix.flight_count = 0;
  mix.weather_cols = 0;
  mix.duration_ms = 20 * kMillisPerMinute;
  mix.seed = 11;
  std::vector<scenario::FleetEvent> fleet = scenario::MakeFleet(mix);
  ASSERT_GT(fleet.size(), 500u);

  CpaScreenOptions options;
  options.max_range_m = 50000.0;
  options.dcpa_m = 15000.0;
  options.tcpa_s = 3600.0;

  options.index = geom::SpatialBackend::kScan;
  CpaScreen scan(options);
  options.index = geom::SpatialBackend::kGrid;
  CpaScreen grid(options);
  options.index = geom::SpatialBackend::kRtree;
  CpaScreen rtree(options);

  auto normalize = [](const std::vector<CollisionWarning>& warnings) {
    std::multiset<std::pair<uint64_t, uint64_t>> out;
    for (const CollisionWarning& w : warnings) {
      out.insert({std::min(w.entity_a, w.entity_b),
                  std::max(w.entity_a, w.entity_b)});
    }
    return out;
  };

  size_t total_warnings = 0;
  for (size_t i = 0; i < fleet.size(); ++i) {
    Position p = stream::RecordToPosition(fleet[i].record);
    auto want = normalize(scan.Observe(p));
    EXPECT_EQ(normalize(grid.Observe(p)), want) << "obs " << i;
    EXPECT_EQ(normalize(rtree.Observe(p)), want) << "obs " << i;
    total_warnings += want.size();
    if (HasFailure()) break;
  }
  EXPECT_GT(total_warnings, 0u);
  EXPECT_GT(scan.pairs_evaluated(), 0u);
  EXPECT_EQ(grid.pairs_evaluated(), scan.pairs_evaluated());
  EXPECT_EQ(rtree.pairs_evaluated(), scan.pairs_evaluated());
}

}  // namespace
}  // namespace tcmf::prediction
