#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.h"
#include "datagen/areas.h"
#include "geom/geo.h"
#include "linkdiscovery/linker.h"
#include "scenario/fleet.h"
#include "stream/record.h"

namespace tcmf::linkdiscovery {
namespace {

const geom::BBox kExtent{0.0, 35.0, 10.0, 44.0};

Position MakePos(uint64_t id, TimeMs t, double lon, double lat) {
  Position p;
  p.entity_id = id;
  p.t = t;
  p.lon = lon;
  p.lat = lat;
  return p;
}

std::vector<geom::Area> TwoRegions() {
  std::vector<geom::Area> regions;
  geom::Area a;
  a.id = 1;
  a.kind = "protected";
  a.shape = geom::Polygon::Circle({2.0, 38.0}, 20000.0, 24);
  regions.push_back(a);
  geom::Area b;
  b.id = 2;
  b.kind = "fishing";
  b.shape = geom::Polygon::Circle({7.0, 42.0}, 30000.0, 24);
  regions.push_back(b);
  return regions;
}

LinkerConfig BaseConfig() {
  LinkerConfig config;
  config.extent = kExtent;
  config.near_distance_m = 5000.0;
  return config;
}

TEST(LinkerTest, WithinDetected) {
  SpatioTemporalLinker linker(BaseConfig(), TwoRegions());
  auto links = linker.Observe(MakePos(1, 0, 2.0, 38.0));
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].relation, Link::Relation::kWithin);
  EXPECT_EQ(links[0].object_id, 1u);
  EXPECT_FALSE(links[0].object_is_entity);
}

TEST(LinkerTest, NearToDetectedOutsideButClose) {
  SpatioTemporalLinker linker(BaseConfig(), TwoRegions());
  // ~23 km from center = ~3 km outside the 20 km circle.
  geom::LonLat p = geom::Destination({2.0, 38.0}, 90.0, 23000.0);
  auto links = linker.Observe(MakePos(1, 0, p.lon, p.lat));
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].relation, Link::Relation::kNearTo);
}

TEST(LinkerTest, FarPointProducesNothing) {
  SpatioTemporalLinker linker(BaseConfig(), TwoRegions());
  auto links = linker.Observe(MakePos(1, 0, 5.0, 40.0));
  EXPECT_TRUE(links.empty());
}

TEST(LinkerTest, MaskSkipsOpenSeaPoints) {
  LinkerConfig config = BaseConfig();
  config.use_masks = true;
  SpatioTemporalLinker linker(config, TwoRegions());
  // Observe many points in region-free water near (but in the same cells
  // as) nothing; most land in fully-free cells, but points in candidate
  // cells far from the region should hit the mask.
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    double lon = rng.Uniform(kExtent.min_lon, kExtent.max_lon);
    double lat = rng.Uniform(kExtent.min_lat, kExtent.max_lat);
    linker.Observe(MakePos(1, i, lon, lat));
  }
  EXPECT_GT(linker.stats().mask_skips, 0u);
}

TEST(LinkerTest, MaskNeverChangesResults) {
  // Property: masks are a pure optimization — identical links with and
  // without them, on points saturating the area around regions.
  auto regions = TwoRegions();
  LinkerConfig with = BaseConfig();
  with.use_masks = true;
  LinkerConfig without = BaseConfig();
  without.use_masks = false;
  SpatioTemporalLinker lw(with, regions);
  SpatioTemporalLinker lo(without, regions);

  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    // Concentrate samples around region 1's boundary (the tricky zone).
    geom::LonLat p = geom::Destination({2.0, 38.0}, rng.Uniform(0, 360),
                                       rng.Uniform(0, 60000.0));
    Position pos = MakePos(1, i, p.lon, p.lat);
    auto a = lw.Observe(pos);
    auto b = lo.Observe(pos);
    ASSERT_EQ(a.size(), b.size()) << "at " << p.lon << "," << p.lat;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].relation, b[k].relation);
      EXPECT_EQ(a[k].object_id, b[k].object_id);
    }
  }
  // And the masked run must have done measurably fewer polygon tests.
  EXPECT_LT(lw.stats().polygon_tests, lo.stats().polygon_tests);
}

TEST(LinkerTest, BlockingMatchesNaiveBaseline) {
  Rng rng(7);
  auto regions = datagen::MakeRegions(rng, kExtent, 25, "zone", 8000, 40000);
  LinkerConfig config = BaseConfig();
  SpatioTemporalLinker grid_linker(config, regions);
  NaiveLinker naive(config.near_distance_m, regions);

  for (int i = 0; i < 2000; ++i) {
    double lon = rng.Uniform(kExtent.min_lon, kExtent.max_lon);
    double lat = rng.Uniform(kExtent.min_lat, kExtent.max_lat);
    Position pos = MakePos(1, i, lon, lat);
    auto a = grid_linker.Observe(pos);
    auto b = naive.Observe(pos);
    std::multiset<uint64_t> ga, gb;
    for (const auto& l : a) ga.insert(l.object_id * 2 +
                                      (l.relation == Link::Relation::kWithin));
    for (const auto& l : b) gb.insert(l.object_id * 2 +
                                      (l.relation == Link::Relation::kWithin));
    ASSERT_EQ(ga, gb) << "mismatch at point " << i;
  }
}

TEST(LinkerTest, MovingPairProximity) {
  LinkerConfig config = BaseConfig();
  config.link_moving_pairs = true;
  config.temporal_window_ms = 60000;
  SpatioTemporalLinker linker(config, {});
  linker.Observe(MakePos(1, 0, 5.0, 40.0));
  // Second entity 2 km away, 30 s later: nearTo.
  geom::LonLat near = geom::Destination({5.0, 40.0}, 45.0, 2000.0);
  auto links = linker.Observe(MakePos(2, 30000, near.lon, near.lat));
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].relation, Link::Relation::kNearTo);
  EXPECT_TRUE(links[0].object_is_entity);
  EXPECT_EQ(links[0].object_id, 1u);
}

TEST(LinkerTest, TemporalWindowExcludesOldPoints) {
  LinkerConfig config = BaseConfig();
  config.link_moving_pairs = true;
  config.temporal_window_ms = 60000;
  SpatioTemporalLinker linker(config, {});
  linker.Observe(MakePos(1, 0, 5.0, 40.0));
  // Same place but 10 minutes later: outside the temporal window.
  auto links = linker.Observe(MakePos(2, 600000, 5.001, 40.001));
  EXPECT_TRUE(links.empty());
}

TEST(LinkerTest, SameEntityNeverLinksToItself) {
  LinkerConfig config = BaseConfig();
  config.link_moving_pairs = true;
  SpatioTemporalLinker linker(config, {});
  linker.Observe(MakePos(1, 0, 5.0, 40.0));
  auto links = linker.Observe(MakePos(1, 10000, 5.0005, 40.0005));
  EXPECT_TRUE(links.empty());
}

TEST(LinkerTest, SpatiallyDistantPairsExcluded) {
  LinkerConfig config = BaseConfig();
  config.link_moving_pairs = true;
  SpatioTemporalLinker linker(config, {});
  linker.Observe(MakePos(1, 0, 5.0, 40.0));
  // 50 km away at the same time: too far.
  geom::LonLat far = geom::Destination({5.0, 40.0}, 0.0, 50000.0);
  auto links = linker.Observe(MakePos(2, 1000, far.lon, far.lat));
  EXPECT_TRUE(links.empty());
}

TEST(LinkerTest, StatsAccumulate) {
  SpatioTemporalLinker linker(BaseConfig(), TwoRegions());
  linker.Observe(MakePos(1, 0, 2.0, 38.0));
  linker.Observe(MakePos(1, 1, 5.0, 40.0));
  EXPECT_EQ(linker.stats().points_processed, 2u);
  EXPECT_EQ(linker.stats().links_within, 1u);
}

TEST(LinkerTest, FullyFreeCellFractionHighForSparseRegions) {
  SpatioTemporalLinker linker(BaseConfig(), TwoRegions());
  EXPECT_GT(linker.FullyFreeCellFraction(), 0.8);
}

// ------------------------------------------------------------------
// Grid-vs-rtree(-vs-scan) equivalence: identical link sets, identical
// counters, per observation, over a realistic seeded vessel fleet.

std::vector<Position> FleetPositions(uint64_t seed) {
  scenario::FleetMix mix;
  mix.vessel_count = 40;
  mix.flight_count = 0;  // positions only: no weather/flight records
  mix.weather_cols = 0;
  mix.duration_ms = 30 * kMillisPerMinute;
  mix.seed = seed;
  std::vector<Position> out;
  for (const scenario::FleetEvent& ev : scenario::MakeFleet(mix)) {
    out.push_back(stream::RecordToPosition(ev.record));
  }
  return out;
}

using LinkTuple = std::tuple<int, uint64_t, TimeMs, uint64_t, bool>;

std::multiset<LinkTuple> Normalize(const std::vector<Link>& links) {
  std::multiset<LinkTuple> out;
  for (const Link& l : links) {
    out.insert({static_cast<int>(l.relation), l.subject_entity, l.subject_t,
                l.object_id, l.object_is_entity});
  }
  return out;
}

TEST(LinkerBackendEquivTest, IdenticalLinksAndStatsOnSeededFleets) {
  size_t entity_links = 0;
  for (uint64_t seed : {3u, 1771u}) {
    std::vector<Position> fleet = FleetPositions(seed);
    ASSERT_GT(fleet.size(), 1000u);

    LinkerConfig config = BaseConfig();
    config.extent = geom::BBox{-6.0, 35.0, 10.0, 44.0};  // datagen extent
    config.link_moving_pairs = true;
    config.near_distance_m = 8000.0;

    config.pair_index = geom::SpatialBackend::kGrid;
    SpatioTemporalLinker grid(config, TwoRegions());
    config.pair_index = geom::SpatialBackend::kRtree;
    SpatioTemporalLinker rtree(config, TwoRegions());
    config.pair_index = geom::SpatialBackend::kScan;
    SpatioTemporalLinker scan(config, TwoRegions());

    for (size_t i = 0; i < fleet.size(); ++i) {
      auto want = Normalize(scan.Observe(fleet[i]));
      EXPECT_EQ(Normalize(grid.Observe(fleet[i])), want) << "obs " << i;
      EXPECT_EQ(Normalize(rtree.Observe(fleet[i])), want) << "obs " << i;
      for (const LinkTuple& l : want) {
        if (std::get<4>(l)) ++entity_links;
      }
      if (HasFailure()) break;  // one detailed divergence is enough
    }
    EXPECT_EQ(grid.stats().pair_candidates, scan.stats().pair_candidates);
    EXPECT_EQ(rtree.stats().pair_candidates, scan.stats().pair_candidates);
    EXPECT_EQ(grid.stats().distance_tests, scan.stats().distance_tests);
    EXPECT_EQ(rtree.stats().distance_tests, scan.stats().distance_tests);
    EXPECT_EQ(grid.stats().links_near_entity, scan.stats().links_near_entity);
    EXPECT_EQ(rtree.stats().links_near_entity,
              scan.stats().links_near_entity);
  }
  // The fleets must actually exercise the proximity path.
  EXPECT_GT(entity_links, 100u);
}

}  // namespace
}  // namespace tcmf::linkdiscovery
