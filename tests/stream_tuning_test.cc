// Tests for the transport self-tuning loop (src/stream/tuning.h):
// BatchPolicy::Adaptive + BatchTuner unit behavior driven by synthetic
// StageMetrics windows (growth while batches fill, back-off past the
// slow-batch latency bound, convergence after steady holds), the
// degenerate min_batch == max_batch_cap static fallback, tuner state in
// Pipeline::Report()/ReportJson(), convergence and phase-change behavior
// on real pipelines, and adaptive + Fuse() + CloseAndDrain() shutdown
// under the watchdog harness. Also the elastic-capacity half:
// CapacityPolicy + CapacityTuner units (grow under saturation+blocking,
// shrink after shallow streaks, converge, clamped seed), Channel::Resize
// semantics (waiter re-notification, shrink-never-evicts, window
// watermark), the latency-budget linger (policy overlay + budget-driven
// flushes), and elastic edges on real pipelines. The written model these
// tests pin down is docs/STREAM_TUNING.md.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stream/channel.h"
#include "stream/pipeline.h"
#include "stream/tuning.h"

namespace tcmf::stream {
namespace {

// ------------------------------------------------- policy construction

TEST(TunerPolicyTest, AdaptiveFactoryClampsSeedIntoRange) {
  BatchPolicy p = BatchPolicy::Adaptive(4096, 2, 512);
  EXPECT_TRUE(p.adaptive());
  EXPECT_TRUE(p.batched());
  EXPECT_EQ(p.max_batch, 512u);  // seed clamped to cap
  EXPECT_EQ(p.min_batch, 2u);
  EXPECT_EQ(p.max_batch_cap, 512u);
  EXPECT_EQ(p.PopMax(), 512u);

  BatchPolicy lo = BatchPolicy::Adaptive(1, 8, 64);
  EXPECT_EQ(lo.max_batch, 8u);  // seed clamped to min
}

TEST(TunerPolicyTest, DegenerateRangeIsStaticPolicy) {
  // min_batch == max_batch_cap: the controller has no room, the policy
  // degenerates to Batched(min_batch) and no tuner is ever created.
  BatchPolicy p = BatchPolicy::Adaptive(16, 32, 32);
  EXPECT_FALSE(p.adaptive());
  EXPECT_TRUE(p.batched());
  EXPECT_EQ(p.max_batch, 32u);
  EXPECT_EQ(p.PopMax(), 32u);

  EXPECT_FALSE(BatchPolicy::Single().adaptive());
  EXPECT_FALSE(BatchPolicy::Batched(64).adaptive());
}

// ------------------------------------------- controller unit behavior
//
// The tuner is driven directly with synthetic per-window StageMetrics so
// each controller decision is deterministic.

class FakeEdge {
 public:
  std::function<StageMetrics()> SnapshotFn() {
    return [this] { return metrics_; };
  }

  /// Simulates one window: `pushes` transfers carrying `records` total,
  /// `pops` consumer transfers.
  void Window(uint64_t records, uint64_t pushes, uint64_t pops) {
    metrics_.records_in += records;
    metrics_.records_out += records;
    metrics_.batches_in += pushes;
    metrics_.batches_out += pops;
  }

  /// Simulates the consumer spending `ns` of the window blocked in Pop —
  /// the starvation evidence behind BatchPolicy::
  /// backoff_max_starved_fraction.
  void ConsumerBlocked(uint64_t ns) { metrics_.consumer_blocked_ns += ns; }

 private:
  StageMetrics metrics_;
};

BatchPolicy TestPolicy(size_t seed, size_t min, size_t cap) {
  BatchPolicy p = BatchPolicy::Adaptive(seed, min, cap);
  // Gigantic latency bound: back-off never fires unless a test wants it.
  p.slow_batch_ms = 1e9;
  return p;
}

TEST(TunerUnitTest, GrowsWhileProducersFillBatches) {
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(8, 1, 64), edge.SnapshotFn());
  ASSERT_EQ(tuner.target(), 8u);

  // Full batches at the current target: multiplicative increase to cap.
  edge.Window(800, 100, 100);  // mean push 8 == target
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 16u);
  edge.Window(1600, 100, 100);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 32u);
  edge.Window(3200, 100, 100);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);
  // At the cap: no further growth.
  edge.Window(6400, 100, 100);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);

  const TunerState s = tuner.Snapshot();
  EXPECT_EQ(s.adjust_up, 3u);
  EXPECT_EQ(s.adjust_down, 0u);
  EXPECT_EQ(s.samples, 4u);
}

TEST(TunerUnitTest, HoldsWhenBatchesTrickle) {
  // Mean push far below fill_threshold * target: a bigger target buys
  // nothing, so the tuner holds.
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(64, 1, 1024), edge.SnapshotFn());
  edge.Window(200, 100, 100);  // mean push 2 < 0.5 * 64
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);
  EXPECT_EQ(tuner.Snapshot().adjust_up, 0u);
}

TEST(TunerUnitTest, ConvergesAfterSteadyHolds) {
  FakeEdge edge;
  BatchPolicy policy = TestPolicy(8, 1, 16);
  BatchTuner tuner(policy, edge.SnapshotFn());
  edge.Window(800, 100, 100);
  tuner.Sample();  // 8 -> 16 (cap)
  ASSERT_EQ(tuner.target(), 16u);
  EXPECT_EQ(tuner.Snapshot().converged_batch, 0u);
  // converge_after consecutive holds publish the converged size.
  for (uint32_t i = 0; i < policy.converge_after; ++i) {
    edge.Window(1600, 100, 100);
    tuner.Sample();
  }
  EXPECT_EQ(tuner.Snapshot().converged_batch, 16u);
  EXPECT_EQ(tuner.target(), 16u);
}

TEST(TunerUnitTest, BacksOffWhenConsumerPopsAreSlow) {
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(64, 4, 64);
  policy.slow_batch_ms = 0.0;  // any measurable pop time is "slow"
  BatchTuner tuner(policy, edge.SnapshotFn());

  // One pop for the whole window: wall time per pop exceeds the bound,
  // so the target halves until the floor.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(64, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 32u);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(32, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 16u);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(16, 1, 1);
  tuner.Sample();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(8, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 4u);  // clamped at min_batch
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(4, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 4u);  // never below the floor

  const TunerState s = tuner.Snapshot();
  EXPECT_EQ(s.adjust_down, 4u);
  EXPECT_GT(s.last_pop_ms, 0.0);
}

TEST(TunerUnitTest, StalledConsumerReportsNoPopsAndBacksOff) {
  // Records flowed in but the consumer made zero pops: pop time is
  // effectively unbounded — back off, and report last_pop_ms as -1.
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(32, 1, 64);
  policy.slow_batch_ms = 0.0;
  BatchTuner tuner(policy, edge.SnapshotFn());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(64, 2, 0);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 16u);
  EXPECT_DOUBLE_EQ(tuner.Snapshot().last_pop_ms, -1.0);
}

TEST(TunerUnitTest, IdleWindowsProduceNoEvidence) {
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(8, 1, 64), edge.SnapshotFn());
  tuner.Sample();  // no records moved: skipped
  tuner.Sample();
  EXPECT_EQ(tuner.Snapshot().samples, 0u);
  EXPECT_EQ(tuner.target(), 8u);
}

TEST(TunerUnitTest, OscillationIsBoundedUnderAlternatingPhases) {
  // Alternating fast/slow windows: the controller must keep the target
  // inside [min, cap] with at most one move per window, and adjustments
  // in both directions must stay bounded by the window count (one sample
  // = at most one step; no compounding oscillation).
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(32, 4, 256);
  BatchTuner tuner(policy, edge.SnapshotFn());
  size_t prev = tuner.target();
  for (int phase = 0; phase < 24; ++phase) {
    const bool slow = (phase % 2) == 1;
    // A "slow" window pops once over >= 2ms; a fast one pops 1000 times.
    if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(3));
    const size_t t = tuner.target();
    edge.Window(t * 8, 8, slow ? 1 : 1000);
    tuner.Sample();
    const size_t cur = tuner.target();
    EXPECT_GE(cur, policy.min_batch);
    EXPECT_LE(cur, policy.max_batch_cap);
    // One controller step at most: halved, grown, or held.
    EXPECT_TRUE(cur == prev || cur == prev / 2 || cur >= prev)
        << "phase " << phase << ": " << prev << " -> " << cur;
    prev = cur;
  }
  const TunerState s = tuner.Snapshot();
  EXPECT_GT(s.adjust_up, 0u);
  EXPECT_GT(s.adjust_down, 0u);
  EXPECT_LE(s.adjust_up + s.adjust_down, s.samples);
}

TEST(TunerUnitTest, OnRecordsSamplesAtCadence) {
  FakeEdge edge;
  BatchPolicy policy = TestPolicy(8, 1, 64);
  policy.tune_every_records = 1000;
  BatchTuner tuner(policy, edge.SnapshotFn());
  edge.Window(999, 100, 100);
  tuner.OnRecords(999);  // below cadence: no sample
  EXPECT_EQ(tuner.Snapshot().samples, 0u);
  tuner.OnRecords(1);  // crosses cadence: one sample
  EXPECT_EQ(tuner.Snapshot().samples, 1u);
}

TEST(TunerUnitTest, FillStageMetricsExposesEveryField) {
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(8, 2, 64), edge.SnapshotFn());
  edge.Window(800, 100, 100);
  tuner.Sample();  // 8 -> 16
  StageMetrics m;
  tuner.FillStageMetrics(&m);
  EXPECT_TRUE(m.tuned);
  EXPECT_EQ(m.tuner_target_batch, 16u);
  EXPECT_EQ(m.tuner_min_batch, 2u);
  EXPECT_EQ(m.tuner_batch_cap, 64u);
  EXPECT_EQ(m.tuner_samples, 1u);
  EXPECT_EQ(m.tuner_adjust_up, 1u);
  EXPECT_EQ(m.tuner_adjust_down, 0u);
  EXPECT_DOUBLE_EQ(m.tuner_mean_push_batch, 8.0);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"tuned\":true"), std::string::npos);
  EXPECT_NE(json.find("\"tuner_target_batch\":16"), std::string::npos);
  EXPECT_NE(json.find("\"tuner_adjust_up\":1"), std::string::npos);
  // Static edges keep the compact object.
  StageMetrics untuned;
  EXPECT_NE(untuned.ToJson().find("\"tuned\":false"), std::string::npos);
  EXPECT_EQ(untuned.ToJson().find("tuner_target_batch"), std::string::npos);
}

// ------------------------------- capacity controller unit behavior
//
// The CapacityTuner is driven directly with synthetic windows (blocked-ns
// delta + wall time + a fake watermark) so each resize decision is
// deterministic.

struct FakeChannel {
  size_t capacity;
  size_t watermark = 0;
  std::vector<size_t> resizes;

  std::function<void(size_t)> ResizeFn() {
    return [this](size_t c) {
      capacity = c;
      resizes.push_back(c);
    };
  }
  std::function<size_t()> WatermarkFn() {
    return [this] { return watermark; };
  }
};

TEST(CapacityTunerUnitTest, DefaultPolicyIsInert) {
  EXPECT_FALSE(CapacityPolicy{}.adaptive());
  EXPECT_TRUE(CapacityPolicy::Adaptive(4, 64).adaptive());
  // Degenerate range: controller disabled.
  EXPECT_FALSE(CapacityPolicy::Adaptive(64, 64).adaptive());
  FakeChannel ch{8};
  CapacityTuner tuner(CapacityPolicy{}, 8, ch.ResizeFn(), ch.WatermarkFn());
  ch.watermark = 8;
  tuner.OnWindow(10'000'000, 10.0);
  EXPECT_EQ(tuner.capacity(), 8u);
  EXPECT_TRUE(ch.resizes.empty());
}

TEST(CapacityTunerUnitTest, SeedOutsideRangeIsClampedThroughResize) {
  FakeChannel ch{2};
  CapacityTuner tuner(CapacityPolicy::Adaptive(4, 64), 2, ch.ResizeFn(),
                      ch.WatermarkFn());
  // The controller and the channel must agree immediately.
  EXPECT_EQ(tuner.capacity(), 4u);
  ASSERT_EQ(ch.resizes.size(), 1u);
  EXPECT_EQ(ch.capacity, 4u);
}

TEST(CapacityTunerUnitTest, GrowsWhenSaturatedAndProducersBlocked) {
  FakeChannel ch{8};
  CapacityTuner tuner(CapacityPolicy::Adaptive(4, 64), 8, ch.ResizeFn(),
                      ch.WatermarkFn());
  // Watermark at the bound + 50% of the window spent blocked: grow x2
  // until the range cap, then hold.
  for (size_t expect : {16u, 32u, 64u, 64u}) {
    ch.watermark = ch.capacity;
    tuner.OnWindow(/*d_blocked_ns=*/5'000'000, /*wall_ms=*/10.0);
    EXPECT_EQ(tuner.capacity(), expect);
    EXPECT_EQ(ch.capacity, expect);
  }
  const CapacityState s = tuner.Snapshot();
  EXPECT_EQ(s.resize_up, 3u);
  EXPECT_EQ(s.resize_down, 0u);
  EXPECT_EQ(s.windows, 4u);
}

TEST(CapacityTunerUnitTest, SaturationWithoutBlockingHolds) {
  // A full queue whose producers never wait (consumer drains in lockstep)
  // is not capacity-bound: more memory buys nothing.
  FakeChannel ch{8};
  CapacityTuner tuner(CapacityPolicy::Adaptive(4, 64), 8, ch.ResizeFn(),
                      ch.WatermarkFn());
  ch.watermark = 8;
  tuner.OnWindow(/*d_blocked_ns=*/0, /*wall_ms=*/10.0);
  // Below the 10% grow_blocked_fraction gate:
  ch.watermark = 8;
  tuner.OnWindow(/*d_blocked_ns=*/500'000, /*wall_ms=*/10.0);
  EXPECT_EQ(tuner.capacity(), 8u);
  EXPECT_EQ(tuner.Snapshot().resize_up, 0u);
}

TEST(CapacityTunerUnitTest, ShrinksAfterConsecutiveShallowWindows) {
  FakeChannel ch{64};
  CapacityPolicy policy = CapacityPolicy::Adaptive(4, 64);
  CapacityTuner tuner(policy, 64, ch.ResizeFn(), ch.WatermarkFn());
  // Watermark well under shallow_fraction * 64 = 16. One shallow window
  // is not enough (shrink_after = 2)...
  ch.watermark = 3;
  tuner.OnWindow(0, 10.0);
  EXPECT_EQ(tuner.capacity(), 64u);
  // ...the second one halves the bound.
  ch.watermark = 3;
  tuner.OnWindow(0, 10.0);
  EXPECT_EQ(tuner.capacity(), 32u);
  EXPECT_EQ(tuner.Snapshot().resize_down, 1u);
  // A deep burst resets the shallow streak: no shrink two windows later.
  ch.watermark = 2;
  tuner.OnWindow(0, 10.0);
  ch.watermark = 30;  // deep (above 25% of 32)
  tuner.OnWindow(0, 10.0);
  ch.watermark = 2;
  tuner.OnWindow(0, 10.0);
  EXPECT_EQ(tuner.capacity(), 32u);
  // Floor: repeated shallow windows never shrink below min_capacity.
  for (int i = 0; i < 10; ++i) {
    ch.watermark = 0;
    tuner.OnWindow(0, 10.0);
  }
  EXPECT_EQ(tuner.capacity(), 4u);
}

TEST(CapacityTunerUnitTest, ConvergesAfterSteadyHolds) {
  FakeChannel ch{16};
  CapacityPolicy policy = CapacityPolicy::Adaptive(4, 64);
  CapacityTuner tuner(policy, 16, ch.ResizeFn(), ch.WatermarkFn());
  // Mid-depth windows (neither saturated nor shallow) are holds.
  for (uint32_t i = 0; i < policy.converge_after; ++i) {
    EXPECT_EQ(tuner.Snapshot().converged, 0u);
    ch.watermark = 8;
    tuner.OnWindow(0, 10.0);
  }
  EXPECT_EQ(tuner.Snapshot().converged, 16u);
  // Any resize voids the convergence.
  ch.watermark = 16;
  tuner.OnWindow(10'000'000, 10.0);
  EXPECT_EQ(tuner.Snapshot().converged, 0u);
}

TEST(CapacityTunerUnitTest, FillStageMetricsExposesCapacityBlock) {
  FakeChannel ch{8};
  CapacityTuner tuner(CapacityPolicy::Adaptive(4, 64), 8, ch.ResizeFn(),
                      ch.WatermarkFn());
  ch.watermark = 8;
  tuner.OnWindow(5'000'000, 10.0);  // one grow
  StageMetrics m;
  tuner.FillStageMetrics(&m);
  EXPECT_TRUE(m.capacity_tuned);
  EXPECT_EQ(m.capacity_min, 4u);
  EXPECT_EQ(m.capacity_max, 64u);
  EXPECT_EQ(m.capacity_resize_up, 1u);
  EXPECT_EQ(m.capacity_resize_down, 0u);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"capacity_tuned\":true"), std::string::npos);
  EXPECT_NE(json.find("\"capacity_resize_up\":1"), std::string::npos);
  // Static edges stay compact (but always report their capacity).
  StageMetrics untuned;
  untuned.capacity = 1024;
  EXPECT_NE(untuned.ToJson().find("\"capacity\":1024"), std::string::npos);
  EXPECT_EQ(untuned.ToJson().find("capacity_tuned"), std::string::npos);
}

// ------------------------------------------- elastic channel behavior

TEST(ElasticChannelTest, ResizeReportsPreviousBoundAndNewCapacity) {
  Channel<int> ch(8);
  EXPECT_EQ(ch.capacity(), 8u);
  EXPECT_EQ(ch.Resize(32), 8u);
  EXPECT_EQ(ch.capacity(), 32u);
  EXPECT_EQ(ch.Resize(16), 32u);
  EXPECT_EQ(ch.capacity(), 16u);
  EXPECT_EQ(ch.MetricsSnapshot().capacity, 16u);
}

TEST(ElasticChannelTest, ShrinkNeverEvictsQueuedElements) {
  Channel<int> ch(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ch.Push(i));
  ch.Resize(2);  // bound below current depth: nothing is dropped
  ch.Close();
  std::vector<int> got;
  while (std::optional<int> v = ch.Pop()) got.push_back(*v);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ElasticChannelTest, WindowWatermarkResetsToCurrentDepth) {
  Channel<int> ch(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(ch.Push(i));
  int v = 0;
  ASSERT_EQ(ch.TryPop(&v), PollStatus::kItem);
  ASSERT_EQ(ch.TryPop(&v), PollStatus::kItem);
  // Peak depth this window was 6 even though only 4 are queued now.
  EXPECT_EQ(ch.TakeQueueWatermarkWindow(), 6u);
  // The window resets to *current* depth, not zero: a persistently deep
  // queue keeps reporting deep.
  EXPECT_EQ(ch.TakeQueueWatermarkWindow(), 4u);
  // The lifetime high watermark is unaffected by window resets.
  EXPECT_EQ(ch.MetricsSnapshot().queue_high_watermark, 6u);
}

// --------------------------------------------- latency-budget linger

TEST(LatencyBudgetPolicyTest, BudgetEnablesTimedFlushes) {
  // linger < 0 normally means "flush only when full"; a budget
  // re-enables the timed path with the budget as the bound.
  BatchPolicy p = BatchPolicy::Batched(1024, -1);
  EXPECT_FALSE(p.LingerEnabled());
  BatchPolicy q = p.WithLatencyBudget(5);
  EXPECT_TRUE(q.LingerEnabled());
  EXPECT_EQ(q.latency_budget_ms, 5);
  EXPECT_EQ(q.max_linger_ms, -1);
  EXPECT_FALSE(p.LingerEnabled());  // fluent copy, original untouched
}

TEST(LatencyBudgetPolicyTest, StageOptionsOverlayBudgetOnInheritedPolicy) {
  const BatchPolicy inherited = BatchPolicy::Batched(64, 20);
  StageOptions opts;
  opts.latency_budget_ms = 5;
  const BatchPolicy effective = opts.EffectivePolicy(inherited);
  EXPECT_EQ(effective.max_batch, 64u);
  EXPECT_EQ(effective.max_linger_ms, 20);
  EXPECT_EQ(effective.latency_budget_ms, 5);
  // Explicit per-stage batch override still gets the budget applied.
  StageOptions both;
  both.batch = BatchPolicy::Batched(8, -1);
  both.latency_budget_ms = 7;
  const BatchPolicy eff2 = both.EffectivePolicy(inherited);
  EXPECT_EQ(eff2.max_batch, 8u);
  EXPECT_TRUE(eff2.LingerEnabled());
  // Unset budget inherits the policy's own contract untouched.
  StageOptions plain;
  EXPECT_EQ(plain.EffectivePolicy(eff2).latency_budget_ms, 7);
}

TEST(LatencyBudgetPipelineTest, BudgetFlushesStagedBatchWhileInputOpen) {
  // The classic linger knob is off (max_linger_ms < 0); only the latency
  // budget can flush the 3-element batch staged inside the map operator
  // while the input channel stays open.
  Pipeline pipeline;
  auto in = std::make_shared<Channel<int>>(64);
  std::atomic<int> delivered{0};
  Flow<int> flow(&pipeline, in, BatchPolicy::Batched(1024, -1));
  flow.Map<int>([](const int& x) { return x; },
                {.capacity = 64, .latency_budget_ms = 5})
      .Sink([&delivered](const int&) { ++delivered; });
  for (int i = 0; i < 3; ++i) in->Push(i);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(4);
  while (delivered.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(delivered.load(), 3);
  in->Close();
  pipeline.Run();
}

// --------------------------------------------- pipeline integration

TEST(TunerPipelineTest, AdaptiveEdgesCarryTunersAndReportState) {
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(4, 1, 256, 5);
  policy.tune_every_records = 512;
  std::vector<int> input(20000);
  std::iota(input.begin(), input.end(), 0);
  auto flow =
      Flow<int>::FromVector(&pipeline, input,
                            {.name = "src", .capacity = 256, .batch = policy})
          .Map<int>([](const int& x) { return x * 2; },
                    {.name = "dbl", .capacity = 256});
  ASSERT_NE(flow.tuner(), nullptr);
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  ASSERT_EQ(out.size(), input.size());

  size_t tuned_edges = 0;
  for (const StageMetrics& m : pipeline.Report()) {
    if (!m.tuned) continue;
    ++tuned_edges;
    EXPECT_GE(m.tuner_target_batch, m.tuner_min_batch) << m.stage;
    EXPECT_LE(m.tuner_target_batch, m.tuner_batch_cap) << m.stage;
    EXPECT_GT(m.tuner_samples, 0u) << m.stage;
  }
  EXPECT_EQ(tuned_edges, 2u);  // src edge + dbl edge
  EXPECT_NE(pipeline.ReportJson().find("\"tuner_target_batch\""),
            std::string::npos);
}

TEST(TunerPipelineTest, ConvergesUpwardUnderSteadyFastLoad) {
  // Fast producer, trivial consumer: transfer-granularity-bound, so the
  // tuner must grow the source edge's target above the seed.
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(4, 1, 256, 5);
  policy.tune_every_records = 512;
  policy.slow_batch_ms = 1e9;  // keep CI scheduling noise out of the test
  std::vector<int> input(60000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(
      &pipeline, input, {.name = "src", .capacity = 256, .batch = policy});
  std::atomic<long long> sum{0};
  flow.Sink([&sum](const int& x) {
    sum.fetch_add(x, std::memory_order_relaxed);
  });
  pipeline.Run();

  ASSERT_NE(flow.tuner(), nullptr);
  const TunerState s = flow.tuner()->Snapshot();
  EXPECT_GT(s.samples, 0u);
  EXPECT_GT(s.adjust_up, 0u);
  EXPECT_GT(s.target_batch, 4u);
  EXPECT_EQ(s.adjust_down, 0u);
}

TEST(TunerPipelineTest, BacksOffUnderSlowConsumerPhase) {
  // Phase change: the sink turns compute-bound halfway through. The
  // tuner must register back-off adjustments once pops exceed the
  // latency bound.
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(128, 1, 256, 5);
  policy.tune_every_records = 256;
  policy.slow_batch_ms = 0.5;
  std::vector<int> input(6000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(
      &pipeline, input, {.name = "src", .capacity = 256, .batch = policy});
  std::atomic<size_t> seen{0};
  flow.Sink([&seen](const int&) {
    const size_t n = seen.fetch_add(1, std::memory_order_relaxed);
    if (n >= 3000) {
      // Slow phase: ~40us of "work" per record makes any target > ~12
      // exceed the 0.5ms/pop bound.
      std::this_thread::sleep_for(std::chrono::microseconds(40));
    }
  });
  pipeline.Run();

  ASSERT_NE(flow.tuner(), nullptr);
  const TunerState s = flow.tuner()->Snapshot();
  EXPECT_GT(s.adjust_down, 0u) << "tuner never backed off under the slow "
                                  "consumer phase";
  EXPECT_LT(s.target_batch, 128u);
}

TEST(TunerPipelineTest, DegenerateAdaptivePolicyRunsStatic) {
  Pipeline pipeline;
  const BatchPolicy policy = BatchPolicy::Adaptive(16, 32, 32);
  std::vector<int> input(5000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(
      &pipeline, input, {.name = "src", .capacity = 64, .batch = policy});
  EXPECT_EQ(flow.tuner(), nullptr);  // no controller created
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  for (const StageMetrics& m : pipeline.Report()) {
    EXPECT_FALSE(m.tuned) << m.stage;
    EXPECT_EQ(m.tuner_samples, 0u) << m.stage;
  }
}

TEST(TunerPipelineTest, KeyedParallelSharesOneOutputTuner) {
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(8, 1, 128, 5);
  policy.tune_every_records = 256;
  std::vector<int> input(30000);
  std::iota(input.begin(), input.end(), 0);
  struct State {
    long long sum = 0;
  };
  auto flow =
      Flow<int>::FromVector(&pipeline, input,
                            {.name = "src", .capacity = 128, .batch = policy})
          .KeyedProcessParallel<int, State>(
              [](const int& x) { return static_cast<uint64_t>(x % 16); },
              [](const int& x, State& st,
                 const std::function<void(int)>& emit) {
                st.sum += x;
                emit(x);
              },
              4, nullptr, {.name = "par", .capacity = 128});
  ASSERT_NE(flow.tuner(), nullptr);
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  // All four workers fed the same controller; its state must be coherent.
  const TunerState s = flow.tuner()->Snapshot();
  EXPECT_GE(s.target_batch, 1u);
  EXPECT_LE(s.target_batch, 128u);
  EXPECT_GT(s.samples, 0u);
}

TEST(TunerPipelineTest, ElasticCapacityGrowsUnderBlockedProducers) {
  // A fast source pushing into a tiny elastic channel whose consumer is
  // compute-bound: the queue saturates, the producer blocks, and the
  // capacity controller must grow the bound (observable in the report).
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Batched(16, 1);
  policy.tune_every_records = 256;  // drive capacity windows often
  std::vector<int> input(20000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(
      &pipeline, input,
      {.name = "src",
       .capacity = 4,
       .batch = policy,
       .capacity_tuning = CapacityPolicy::Adaptive(4, 1024)});
  std::atomic<size_t> seen{0};
  flow.Sink([&seen](const int&) {
    if ((seen.fetch_add(1, std::memory_order_relaxed) & 63u) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  pipeline.Run();
  EXPECT_EQ(seen.load(), input.size());

  bool found = false;
  for (const StageMetrics& m : pipeline.Report()) {
    if (m.stage != "src") continue;
    found = true;
    EXPECT_TRUE(m.capacity_tuned);
    EXPECT_EQ(m.capacity_min, 4u);
    EXPECT_EQ(m.capacity_max, 1024u);
    EXPECT_GT(m.capacity_resize_up, 0u) << "elastic bound never grew";
    EXPECT_GT(m.capacity, 4u);
  }
  EXPECT_TRUE(found);
  EXPECT_NE(pipeline.ReportJson().find("\"capacity_resize_up\""),
            std::string::npos);
}

TEST(TunerPipelineTest, CapacityOnlyTuningReportsNoBatchTunerBlock) {
  // CapacityPolicy::Adaptive on a *static* batch policy: the edge gets a
  // carrier tuner for the capacity controller, but must not claim the
  // batch target is tuned.
  Pipeline pipeline;
  std::vector<int> input(5000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(
      &pipeline, input,
      {.name = "src",
       .capacity = 64,
       .batch = BatchPolicy::Batched(16, 1),
       .capacity_tuning = CapacityPolicy::Adaptive(16, 256)});
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  for (const StageMetrics& m : pipeline.Report()) {
    if (m.stage != "src") continue;
    EXPECT_FALSE(m.tuned) << "static batch policy must not report tuner_*";
    EXPECT_TRUE(m.capacity_tuned);
  }
}

// ------------------------------ partition-edge tuners + skew summary

TEST(WorkerEdgeTunerTest, StarvedConsumerSlowPopsDoNotBackOff) {
  // A cold partition edge of a skewed fan-out: its consumer spends the
  // whole window parked in Pop, so the few pops it takes look slow per
  // wall clock — but that is arrival-limited, not work-limited. The
  // starvation gate must hold the target instead of shrinking it in
  // sympathy with the hot edge.
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(64, 4, 64);
  policy.slow_batch_ms = 0.0;  // any measurable pop time is "slow"
  BatchTuner tuner(policy, edge.SnapshotFn());

  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(64, 1, 1);
  // Blocked longer than any plausible window wall time: starved_fraction
  // lands far above backoff_max_starved_fraction.
  edge.ConsumerBlocked(uint64_t{10} * 1000 * 1000 * 1000);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);
  EXPECT_EQ(tuner.Snapshot().adjust_down, 0u);

  // Same evidence WITHOUT starvation: the classic back-off must still
  // fire (the gate only suppresses arrival-limited slowness).
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(64, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 32u);
  EXPECT_EQ(tuner.Snapshot().adjust_down, 1u);
}

StageMetrics MakeEdge(uint64_t records, size_t target, uint64_t down) {
  StageMetrics m;
  m.records_in = records;
  m.tuned = true;
  m.tuner_target_batch = target;
  m.tuner_adjust_down = down;
  return m;
}

TEST(WorkerEdgeTunerTest, SummarizeSplitsHotAndColdEdges) {
  // One edge carries 1000 of 1300 records (≥ 2× the 325 mean): hot. Its
  // back-offs land in hot_adjust_down; the cold straggler's lone back-off
  // stays in cold_adjust_down so a skew report can tell them apart.
  const std::vector<StageMetrics> edges = {
      MakeEdge(1000, 8, 3), MakeEdge(100, 64, 0), MakeEdge(100, 64, 0),
      MakeEdge(100, 64, 1)};
  const WorkerEdgeSkew s = SummarizeWorkerEdges(edges);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.hot_edges, 1u);
  EXPECT_EQ(s.hot_records, 1000u);
  EXPECT_EQ(s.hot_adjust_down, 3u);
  EXPECT_EQ(s.cold_adjust_down, 1u);
  EXPECT_EQ(s.min_target, 8u);
  EXPECT_EQ(s.max_target, 64u);
  EXPECT_NEAR(s.mean_records, 325.0, 1e-9);
  EXPECT_NEAR(s.skew_ratio, 1000.0 / 325.0, 1e-9);
}

TEST(WorkerEdgeTunerTest, SummarizeUniformLoadHasNoHotEdges) {
  const std::vector<StageMetrics> edges = {MakeEdge(500, 32, 0),
                                           MakeEdge(500, 32, 0)};
  const WorkerEdgeSkew s = SummarizeWorkerEdges(edges);
  EXPECT_EQ(s.hot_edges, 0u);
  EXPECT_NEAR(s.skew_ratio, 1.0, 1e-9);
  EXPECT_EQ(SummarizeWorkerEdges({}).edges, 0u);
}

TEST(WorkerEdgeTunerTest, FusedKeyedStageReportsPerEdgeTunerState) {
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(8, 1, 128, 5);
  policy.tune_every_records = 256;
  std::vector<int> input(30000);
  std::iota(input.begin(), input.end(), 0);
  auto flow =
      Flow<int>::FromVector(&pipeline, input,
                            {.name = "src", .capacity = 128, .batch = policy})
          .Fuse()
          .Map<int>([](const int& x) { return x + 1; })
          .KeyedProcessParallel<int, long long>(
              [](const int& x) { return static_cast<uint64_t>(x % 16); },
              [](const int& x, long long& sum,
                 const std::function<void(int)>& emit) {
                sum += x;
                emit(x);
              },
              4, nullptr, {.name = "par", .capacity = 128});
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  bool found = false;
  for (const StageMetrics& m : pipeline.Report()) {
    if (m.stage != "par") continue;
    found = true;
    ASSERT_EQ(m.worker_edges.size(), 4u);
    uint64_t edge_records = 0;
    for (const StageMetrics& e : m.worker_edges) {
      EXPECT_TRUE(e.tuned) << e.stage;
      EXPECT_NE(e.stage.find(".part"), std::string::npos) << e.stage;
      edge_records += e.records_in;
    }
    // Every record that reached the stage crossed exactly one
    // partition edge.
    EXPECT_EQ(edge_records, input.size());
    EXPECT_GE(m.skew_ratio, 1.0);
  }
  EXPECT_TRUE(found);
  const std::string json = pipeline.ReportJson();
  EXPECT_NE(json.find("\"worker_edges\""), std::string::npos);
  EXPECT_NE(json.find("\"skew_ratio\""), std::string::npos);
}

TEST(WorkerEdgeTunerTest, RouterInputTunerSeedsFromUpstreamTarget) {
  // Regression: the router used to pop its input at the UPSTREAM edge's
  // tuner verbatim, so a fused prefix that changes the per-record cost
  // at the router was tuned against the wrong edge. The router input now
  // gets its own controller, seeded from the upstream target (8 here)
  // rather than the stage policy's own seed (64) — visible as the
  // ".router_in" report row.
  Pipeline pipeline;
  BatchPolicy src_policy = BatchPolicy::Adaptive(8, 1, 128, 5);
  src_policy.tune_every_records = 1 << 30;  // hold the seed all run
  BatchPolicy stage_policy = BatchPolicy::Adaptive(64, 1, 256, 5);
  stage_policy.tune_every_records = 1 << 30;
  std::vector<int> input(500);
  std::iota(input.begin(), input.end(), 0);
  auto flow =
      Flow<int>::FromVector(
          &pipeline, input,
          {.name = "src", .capacity = 64, .batch = src_policy})
          .Fuse()
          .Map<int>([](const int& x) { return x * 2; })
          .KeyedProcessParallel<int, long long>(
              [](const int& x) { return static_cast<uint64_t>(x % 5); },
              [](const int& x, long long& sum,
                 const std::function<void(int)>& emit) {
                sum += x;
                emit(x);
              },
              3, nullptr,
              {.name = "par", .capacity = 64, .batch = stage_policy});
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  bool found = false;
  for (const StageMetrics& m : pipeline.Report()) {
    if (m.stage != "par.router_in") continue;
    found = true;
    EXPECT_TRUE(m.tuned);
    EXPECT_EQ(m.tuner_target_batch, 8u)
        << "router input must seed from the upstream target, not the "
           "stage policy seed";
  }
  EXPECT_TRUE(found);
}

// ------------------------------------- shutdown under the watchdog

// Watchdog: fails (instead of hanging the suite) when the pipeline does
// not shut down in time.
void ExpectCompletesWithin(std::function<void()> body, int timeout_ms) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> finished = done->get_future();
  std::thread([body = std::move(body), done] {
    body();
    done->set_value();
  }).detach();
  ASSERT_EQ(finished.wait_for(std::chrono::milliseconds(timeout_ms)),
            std::future_status::ready)
      << "pipeline hung: adaptive shutdown deadlock regression";
}

TEST(TunerShutdownTest, AdaptiveFusedChainCancelPropagatesToSource) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        BatchPolicy policy = BatchPolicy::Adaptive(16, 1, 512, 1);
        policy.tune_every_records = 128;
        std::atomic<int> produced{0};
        // Infinite generator: only upstream cancellation can end it.
        auto source = Flow<int>::FromGenerator(
            &pipeline, [&produced]() -> std::optional<int> { return produced++; },
            {.name = "gen", .capacity = 4, .batch = policy});
        auto fused = source.Fuse()
                         .Map<int>([](const int& x) { return x + 1; })
                         .Filter([](const int& x) { return x % 3 != 0; })
                         .Emit({.name = "fused", .capacity = 4});
        size_t seen = 0;
        fused.SinkWhile([&seen](const int&) { return ++seen < 500; });
        pipeline.Run();
        EXPECT_GE(seen, 500u);
        bool source_cancelled = false;
        for (const auto& m : pipeline.Report()) {
          if (m.stage == "gen") source_cancelled = m.cancelled;
        }
        EXPECT_TRUE(source_cancelled);
      },
      5000);
}

TEST(TunerShutdownTest, AdaptiveSinkCancelsMidRetargetedBatch) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        BatchPolicy policy = BatchPolicy::Adaptive(8, 1, 1024, 1);
        policy.tune_every_records = 64;  // re-target often mid-run
        std::vector<int> input(200000);
        std::iota(input.begin(), input.end(), 0);
        auto flow =
            Flow<int>::FromVector(
                &pipeline, input,
                {.name = "src", .capacity = 4, .batch = policy})
                .Map<int>([](const int& x) { return x + 1; }, {.capacity = 4});
        size_t seen = 0;
        flow.SinkWhile([&seen](const int&) { return ++seen < 100; });
        pipeline.Run();
        EXPECT_GE(seen, 100u);
      },
      5000);
}

TEST(TunerShutdownTest, ConsumerCloseAndDrainUnblocksAdaptiveProducer) {
  ExpectCompletesWithin(
      [] {
        // Raw channel use: an adaptive-sized producer blocked in
        // PushBatch must observe CloseAndDrain and give up.
        auto ch = std::make_shared<Channel<int>>(2);
        BatchPolicy policy = BatchPolicy::Adaptive(64, 1, 256, -1);
        BatchTuner tuner(policy, [ch] { return ch->MetricsSnapshot(); });
        std::thread producer([ch, &tuner] {
          std::vector<int> batch(tuner.target());
          std::iota(batch.begin(), batch.end(), 0);
          ch->PushBatch(std::move(batch));  // blocks: capacity 2 << 64
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ch->CloseAndDrain();
        producer.join();
        EXPECT_TRUE(ch->MetricsSnapshot().cancelled);
      },
      5000);
}

TEST(TunerShutdownTest, ResizeWakesProducersBlockedOnFullQueue) {
  // The waiter re-notification contract of Channel::Resize: producers
  // blocked on a full queue must observe a grown bound without any
  // consumer pop happening. notify_one instead of notify_all here would
  // strand all but one waiter (this test uses several).
  ExpectCompletesWithin(
      [] {
        auto ch = std::make_shared<Channel<int>>(2);
        ASSERT_TRUE(ch->Push(0));
        ASSERT_TRUE(ch->Push(1));
        std::atomic<int> completed{0};
        std::vector<std::thread> producers;
        for (int i = 0; i < 4; ++i) {
          producers.emplace_back([ch, &completed, i] {
            if (ch->Push(100 + i)) completed.fetch_add(1);
          });
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_EQ(completed.load(), 0);  // all four blocked on the bound
        ch->Resize(16);  // room for every waiter: all must wake
        for (auto& t : producers) t.join();
        EXPECT_EQ(completed.load(), 4);
        EXPECT_EQ(ch->size(), 6u);
        EXPECT_EQ(ch->capacity(), 16u);
      },
      5000);
}

}  // namespace
}  // namespace tcmf::stream
