// Tests for the adaptive batching controller (src/stream/tuning.h):
// BatchPolicy::Adaptive + BatchTuner unit behavior driven by synthetic
// StageMetrics windows (growth while batches fill, back-off past the
// slow-batch latency bound, convergence after steady holds), the
// degenerate min_batch == max_batch_cap static fallback, tuner state in
// Pipeline::Report()/ReportJson(), convergence and phase-change behavior
// on real pipelines, and adaptive + Fuse() + CloseAndDrain() shutdown
// under the watchdog harness. The written model these tests pin down is
// docs/STREAM_TUNING.md.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "stream/channel.h"
#include "stream/pipeline.h"
#include "stream/tuning.h"

namespace tcmf::stream {
namespace {

// ------------------------------------------------- policy construction

TEST(TunerPolicyTest, AdaptiveFactoryClampsSeedIntoRange) {
  BatchPolicy p = BatchPolicy::Adaptive(4096, 2, 512);
  EXPECT_TRUE(p.adaptive());
  EXPECT_TRUE(p.batched());
  EXPECT_EQ(p.max_batch, 512u);  // seed clamped to cap
  EXPECT_EQ(p.min_batch, 2u);
  EXPECT_EQ(p.max_batch_cap, 512u);
  EXPECT_EQ(p.PopMax(), 512u);

  BatchPolicy lo = BatchPolicy::Adaptive(1, 8, 64);
  EXPECT_EQ(lo.max_batch, 8u);  // seed clamped to min
}

TEST(TunerPolicyTest, DegenerateRangeIsStaticPolicy) {
  // min_batch == max_batch_cap: the controller has no room, the policy
  // degenerates to Batched(min_batch) and no tuner is ever created.
  BatchPolicy p = BatchPolicy::Adaptive(16, 32, 32);
  EXPECT_FALSE(p.adaptive());
  EXPECT_TRUE(p.batched());
  EXPECT_EQ(p.max_batch, 32u);
  EXPECT_EQ(p.PopMax(), 32u);

  EXPECT_FALSE(BatchPolicy::Single().adaptive());
  EXPECT_FALSE(BatchPolicy::Batched(64).adaptive());
}

// ------------------------------------------- controller unit behavior
//
// The tuner is driven directly with synthetic per-window StageMetrics so
// each controller decision is deterministic.

class FakeEdge {
 public:
  std::function<StageMetrics()> SnapshotFn() {
    return [this] { return metrics_; };
  }

  /// Simulates one window: `pushes` transfers carrying `records` total,
  /// `pops` consumer transfers.
  void Window(uint64_t records, uint64_t pushes, uint64_t pops) {
    metrics_.records_in += records;
    metrics_.records_out += records;
    metrics_.batches_in += pushes;
    metrics_.batches_out += pops;
  }

 private:
  StageMetrics metrics_;
};

BatchPolicy TestPolicy(size_t seed, size_t min, size_t cap) {
  BatchPolicy p = BatchPolicy::Adaptive(seed, min, cap);
  // Gigantic latency bound: back-off never fires unless a test wants it.
  p.slow_batch_ms = 1e9;
  return p;
}

TEST(TunerUnitTest, GrowsWhileProducersFillBatches) {
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(8, 1, 64), edge.SnapshotFn());
  ASSERT_EQ(tuner.target(), 8u);

  // Full batches at the current target: multiplicative increase to cap.
  edge.Window(800, 100, 100);  // mean push 8 == target
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 16u);
  edge.Window(1600, 100, 100);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 32u);
  edge.Window(3200, 100, 100);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);
  // At the cap: no further growth.
  edge.Window(6400, 100, 100);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);

  const TunerState s = tuner.Snapshot();
  EXPECT_EQ(s.adjust_up, 3u);
  EXPECT_EQ(s.adjust_down, 0u);
  EXPECT_EQ(s.samples, 4u);
}

TEST(TunerUnitTest, HoldsWhenBatchesTrickle) {
  // Mean push far below fill_threshold * target: a bigger target buys
  // nothing, so the tuner holds.
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(64, 1, 1024), edge.SnapshotFn());
  edge.Window(200, 100, 100);  // mean push 2 < 0.5 * 64
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 64u);
  EXPECT_EQ(tuner.Snapshot().adjust_up, 0u);
}

TEST(TunerUnitTest, ConvergesAfterSteadyHolds) {
  FakeEdge edge;
  BatchPolicy policy = TestPolicy(8, 1, 16);
  BatchTuner tuner(policy, edge.SnapshotFn());
  edge.Window(800, 100, 100);
  tuner.Sample();  // 8 -> 16 (cap)
  ASSERT_EQ(tuner.target(), 16u);
  EXPECT_EQ(tuner.Snapshot().converged_batch, 0u);
  // converge_after consecutive holds publish the converged size.
  for (uint32_t i = 0; i < policy.converge_after; ++i) {
    edge.Window(1600, 100, 100);
    tuner.Sample();
  }
  EXPECT_EQ(tuner.Snapshot().converged_batch, 16u);
  EXPECT_EQ(tuner.target(), 16u);
}

TEST(TunerUnitTest, BacksOffWhenConsumerPopsAreSlow) {
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(64, 4, 64);
  policy.slow_batch_ms = 0.0;  // any measurable pop time is "slow"
  BatchTuner tuner(policy, edge.SnapshotFn());

  // One pop for the whole window: wall time per pop exceeds the bound,
  // so the target halves until the floor.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(64, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 32u);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(32, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 16u);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(16, 1, 1);
  tuner.Sample();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(8, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 4u);  // clamped at min_batch
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(4, 1, 1);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 4u);  // never below the floor

  const TunerState s = tuner.Snapshot();
  EXPECT_EQ(s.adjust_down, 4u);
  EXPECT_GT(s.last_pop_ms, 0.0);
}

TEST(TunerUnitTest, StalledConsumerReportsNoPopsAndBacksOff) {
  // Records flowed in but the consumer made zero pops: pop time is
  // effectively unbounded — back off, and report last_pop_ms as -1.
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(32, 1, 64);
  policy.slow_batch_ms = 0.0;
  BatchTuner tuner(policy, edge.SnapshotFn());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  edge.Window(64, 2, 0);
  tuner.Sample();
  EXPECT_EQ(tuner.target(), 16u);
  EXPECT_DOUBLE_EQ(tuner.Snapshot().last_pop_ms, -1.0);
}

TEST(TunerUnitTest, IdleWindowsProduceNoEvidence) {
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(8, 1, 64), edge.SnapshotFn());
  tuner.Sample();  // no records moved: skipped
  tuner.Sample();
  EXPECT_EQ(tuner.Snapshot().samples, 0u);
  EXPECT_EQ(tuner.target(), 8u);
}

TEST(TunerUnitTest, OscillationIsBoundedUnderAlternatingPhases) {
  // Alternating fast/slow windows: the controller must keep the target
  // inside [min, cap] with at most one move per window, and adjustments
  // in both directions must stay bounded by the window count (one sample
  // = at most one step; no compounding oscillation).
  FakeEdge edge;
  BatchPolicy policy = BatchPolicy::Adaptive(32, 4, 256);
  BatchTuner tuner(policy, edge.SnapshotFn());
  size_t prev = tuner.target();
  for (int phase = 0; phase < 24; ++phase) {
    const bool slow = (phase % 2) == 1;
    // A "slow" window pops once over >= 2ms; a fast one pops 1000 times.
    if (slow) std::this_thread::sleep_for(std::chrono::milliseconds(3));
    const size_t t = tuner.target();
    edge.Window(t * 8, 8, slow ? 1 : 1000);
    tuner.Sample();
    const size_t cur = tuner.target();
    EXPECT_GE(cur, policy.min_batch);
    EXPECT_LE(cur, policy.max_batch_cap);
    // One controller step at most: halved, grown, or held.
    EXPECT_TRUE(cur == prev || cur == prev / 2 || cur >= prev)
        << "phase " << phase << ": " << prev << " -> " << cur;
    prev = cur;
  }
  const TunerState s = tuner.Snapshot();
  EXPECT_GT(s.adjust_up, 0u);
  EXPECT_GT(s.adjust_down, 0u);
  EXPECT_LE(s.adjust_up + s.adjust_down, s.samples);
}

TEST(TunerUnitTest, OnRecordsSamplesAtCadence) {
  FakeEdge edge;
  BatchPolicy policy = TestPolicy(8, 1, 64);
  policy.tune_every_records = 1000;
  BatchTuner tuner(policy, edge.SnapshotFn());
  edge.Window(999, 100, 100);
  tuner.OnRecords(999);  // below cadence: no sample
  EXPECT_EQ(tuner.Snapshot().samples, 0u);
  tuner.OnRecords(1);  // crosses cadence: one sample
  EXPECT_EQ(tuner.Snapshot().samples, 1u);
}

TEST(TunerUnitTest, FillStageMetricsExposesEveryField) {
  FakeEdge edge;
  BatchTuner tuner(TestPolicy(8, 2, 64), edge.SnapshotFn());
  edge.Window(800, 100, 100);
  tuner.Sample();  // 8 -> 16
  StageMetrics m;
  tuner.FillStageMetrics(&m);
  EXPECT_TRUE(m.tuned);
  EXPECT_EQ(m.tuner_target_batch, 16u);
  EXPECT_EQ(m.tuner_min_batch, 2u);
  EXPECT_EQ(m.tuner_batch_cap, 64u);
  EXPECT_EQ(m.tuner_samples, 1u);
  EXPECT_EQ(m.tuner_adjust_up, 1u);
  EXPECT_EQ(m.tuner_adjust_down, 0u);
  EXPECT_DOUBLE_EQ(m.tuner_mean_push_batch, 8.0);
  const std::string json = m.ToJson();
  EXPECT_NE(json.find("\"tuned\":true"), std::string::npos);
  EXPECT_NE(json.find("\"tuner_target_batch\":16"), std::string::npos);
  EXPECT_NE(json.find("\"tuner_adjust_up\":1"), std::string::npos);
  // Static edges keep the compact object.
  StageMetrics untuned;
  EXPECT_NE(untuned.ToJson().find("\"tuned\":false"), std::string::npos);
  EXPECT_EQ(untuned.ToJson().find("tuner_target_batch"), std::string::npos);
}

// --------------------------------------------- pipeline integration

TEST(TunerPipelineTest, AdaptiveEdgesCarryTunersAndReportState) {
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(4, 1, 256, 5);
  policy.tune_every_records = 512;
  std::vector<int> input(20000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(&pipeline, input, 256, "src", policy)
                  .Map<int>([](const int& x) { return x * 2; }, 256, "dbl");
  ASSERT_NE(flow.tuner(), nullptr);
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  ASSERT_EQ(out.size(), input.size());

  size_t tuned_edges = 0;
  for (const StageMetrics& m : pipeline.Report()) {
    if (!m.tuned) continue;
    ++tuned_edges;
    EXPECT_GE(m.tuner_target_batch, m.tuner_min_batch) << m.stage;
    EXPECT_LE(m.tuner_target_batch, m.tuner_batch_cap) << m.stage;
    EXPECT_GT(m.tuner_samples, 0u) << m.stage;
  }
  EXPECT_EQ(tuned_edges, 2u);  // src edge + dbl edge
  EXPECT_NE(pipeline.ReportJson().find("\"tuner_target_batch\""),
            std::string::npos);
}

TEST(TunerPipelineTest, ConvergesUpwardUnderSteadyFastLoad) {
  // Fast producer, trivial consumer: transfer-granularity-bound, so the
  // tuner must grow the source edge's target above the seed.
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(4, 1, 256, 5);
  policy.tune_every_records = 512;
  policy.slow_batch_ms = 1e9;  // keep CI scheduling noise out of the test
  std::vector<int> input(60000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(&pipeline, input, 256, "src", policy);
  std::atomic<long long> sum{0};
  flow.Sink([&sum](const int& x) {
    sum.fetch_add(x, std::memory_order_relaxed);
  });
  pipeline.Run();

  ASSERT_NE(flow.tuner(), nullptr);
  const TunerState s = flow.tuner()->Snapshot();
  EXPECT_GT(s.samples, 0u);
  EXPECT_GT(s.adjust_up, 0u);
  EXPECT_GT(s.target_batch, 4u);
  EXPECT_EQ(s.adjust_down, 0u);
}

TEST(TunerPipelineTest, BacksOffUnderSlowConsumerPhase) {
  // Phase change: the sink turns compute-bound halfway through. The
  // tuner must register back-off adjustments once pops exceed the
  // latency bound.
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(128, 1, 256, 5);
  policy.tune_every_records = 256;
  policy.slow_batch_ms = 0.5;
  std::vector<int> input(6000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(&pipeline, input, 256, "src", policy);
  std::atomic<size_t> seen{0};
  flow.Sink([&seen](const int&) {
    const size_t n = seen.fetch_add(1, std::memory_order_relaxed);
    if (n >= 3000) {
      // Slow phase: ~40us of "work" per record makes any target > ~12
      // exceed the 0.5ms/pop bound.
      std::this_thread::sleep_for(std::chrono::microseconds(40));
    }
  });
  pipeline.Run();

  ASSERT_NE(flow.tuner(), nullptr);
  const TunerState s = flow.tuner()->Snapshot();
  EXPECT_GT(s.adjust_down, 0u) << "tuner never backed off under the slow "
                                  "consumer phase";
  EXPECT_LT(s.target_batch, 128u);
}

TEST(TunerPipelineTest, DegenerateAdaptivePolicyRunsStatic) {
  Pipeline pipeline;
  const BatchPolicy policy = BatchPolicy::Adaptive(16, 32, 32);
  std::vector<int> input(5000);
  std::iota(input.begin(), input.end(), 0);
  auto flow = Flow<int>::FromVector(&pipeline, input, 64, "src", policy);
  EXPECT_EQ(flow.tuner(), nullptr);  // no controller created
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  for (const StageMetrics& m : pipeline.Report()) {
    EXPECT_FALSE(m.tuned) << m.stage;
    EXPECT_EQ(m.tuner_samples, 0u) << m.stage;
  }
}

TEST(TunerPipelineTest, KeyedParallelSharesOneOutputTuner) {
  Pipeline pipeline;
  BatchPolicy policy = BatchPolicy::Adaptive(8, 1, 128, 5);
  policy.tune_every_records = 256;
  std::vector<int> input(30000);
  std::iota(input.begin(), input.end(), 0);
  struct State {
    long long sum = 0;
  };
  auto flow =
      Flow<int>::FromVector(&pipeline, input, 128, "src", policy)
          .KeyedProcessParallel<int, State>(
              [](const int& x) { return static_cast<uint64_t>(x % 16); },
              [](const int& x, State& st,
                 const std::function<void(int)>& emit) {
                st.sum += x;
                emit(x);
              },
              4, nullptr, 128, "par");
  ASSERT_NE(flow.tuner(), nullptr);
  std::vector<int> out;
  flow.CollectInto(&out);
  pipeline.Run();
  EXPECT_EQ(out.size(), input.size());
  // All four workers fed the same controller; its state must be coherent.
  const TunerState s = flow.tuner()->Snapshot();
  EXPECT_GE(s.target_batch, 1u);
  EXPECT_LE(s.target_batch, 128u);
  EXPECT_GT(s.samples, 0u);
}

// ------------------------------------- shutdown under the watchdog

// Watchdog: fails (instead of hanging the suite) when the pipeline does
// not shut down in time.
void ExpectCompletesWithin(std::function<void()> body, int timeout_ms) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> finished = done->get_future();
  std::thread([body = std::move(body), done] {
    body();
    done->set_value();
  }).detach();
  ASSERT_EQ(finished.wait_for(std::chrono::milliseconds(timeout_ms)),
            std::future_status::ready)
      << "pipeline hung: adaptive shutdown deadlock regression";
}

TEST(TunerShutdownTest, AdaptiveFusedChainCancelPropagatesToSource) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        BatchPolicy policy = BatchPolicy::Adaptive(16, 1, 512, 1);
        policy.tune_every_records = 128;
        std::atomic<int> produced{0};
        // Infinite generator: only upstream cancellation can end it.
        auto source = Flow<int>::FromGenerator(
            &pipeline, [&produced]() -> std::optional<int> { return produced++; },
            4, "gen", policy);
        auto fused = source.Fuse()
                         .Map<int>([](const int& x) { return x + 1; })
                         .Filter([](const int& x) { return x % 3 != 0; })
                         .Emit(4, "fused");
        size_t seen = 0;
        fused.SinkWhile([&seen](const int&) { return ++seen < 500; });
        pipeline.Run();
        EXPECT_GE(seen, 500u);
        bool source_cancelled = false;
        for (const auto& m : pipeline.Report()) {
          if (m.stage == "gen") source_cancelled = m.cancelled;
        }
        EXPECT_TRUE(source_cancelled);
      },
      5000);
}

TEST(TunerShutdownTest, AdaptiveSinkCancelsMidRetargetedBatch) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        BatchPolicy policy = BatchPolicy::Adaptive(8, 1, 1024, 1);
        policy.tune_every_records = 64;  // re-target often mid-run
        std::vector<int> input(200000);
        std::iota(input.begin(), input.end(), 0);
        auto flow = Flow<int>::FromVector(&pipeline, input, 4, "src", policy)
                        .Map<int>([](const int& x) { return x + 1; }, 4);
        size_t seen = 0;
        flow.SinkWhile([&seen](const int&) { return ++seen < 100; });
        pipeline.Run();
        EXPECT_GE(seen, 100u);
      },
      5000);
}

TEST(TunerShutdownTest, ConsumerCloseAndDrainUnblocksAdaptiveProducer) {
  ExpectCompletesWithin(
      [] {
        // Raw channel use: an adaptive-sized producer blocked in
        // PushBatch must observe CloseAndDrain and give up.
        auto ch = std::make_shared<Channel<int>>(2);
        BatchPolicy policy = BatchPolicy::Adaptive(64, 1, 256, -1);
        BatchTuner tuner(policy, [ch] { return ch->MetricsSnapshot(); });
        std::thread producer([ch, &tuner] {
          std::vector<int> batch(tuner.target());
          std::iota(batch.begin(), batch.end(), 0);
          ch->PushBatch(std::move(batch));  // blocks: capacity 2 << 64
        });
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ch->CloseAndDrain();
        producer.join();
        EXPECT_TRUE(ch->MetricsSnapshot().cancelled);
      },
      5000);
}

}  // namespace
}  // namespace tcmf::stream
