#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "geom/geo.h"
#include "va/demand.h"
#include "va/density.h"
#include "va/pointmatch.h"
#include "va/quality.h"
#include "va/relevance.h"
#include "va/timemask.h"

namespace tcmf::va {
namespace {

Position MakePos(TimeMs t, double lon, double lat, double alt = 0.0) {
  Position p;
  p.t = t;
  p.lon = lon;
  p.lat = lat;
  p.alt_m = alt;
  return p;
}

// -------------------------------------------------------------- TimeMask

TEST(TimeMaskTest, NormalizesAndMerges) {
  TimeMask mask({{100, 200}, {150, 300}, {400, 500}, {500, 600}});
  ASSERT_EQ(mask.intervals().size(), 2u);
  EXPECT_EQ(mask.intervals()[0].begin, 100);
  EXPECT_EQ(mask.intervals()[0].end, 300);
  EXPECT_EQ(mask.intervals()[1].end, 600);
}

TEST(TimeMaskTest, ContainsBoundarySemantics) {
  TimeMask mask({{100, 200}});
  EXPECT_TRUE(mask.Contains(100));
  EXPECT_TRUE(mask.Contains(199));
  EXPECT_FALSE(mask.Contains(200));  // exclusive end
  EXPECT_FALSE(mask.Contains(99));
}

TEST(TimeMaskTest, EmptyMaskContainsNothing) {
  TimeMask mask;
  EXPECT_FALSE(mask.Contains(0));
  EXPECT_EQ(mask.TotalDuration(), 0);
}

TEST(TimeMaskTest, FromBinnedCondition) {
  // Bins of 100 over [0, 1000); select bins 2, 3 and 7.
  TimeMask mask = TimeMask::FromBinnedCondition(
      0, 1000, 100, [](size_t b) { return b == 2 || b == 3 || b == 7; });
  ASSERT_EQ(mask.intervals().size(), 2u);  // 2+3 merge
  EXPECT_EQ(mask.intervals()[0].begin, 200);
  EXPECT_EQ(mask.intervals()[0].end, 400);
  EXPECT_EQ(mask.TotalDuration(), 300);
}

TEST(TimeMaskTest, AroundEvents) {
  TimeMask mask = TimeMask::AroundEvents({1000, 5000}, 500);
  EXPECT_TRUE(mask.Contains(700));
  EXPECT_TRUE(mask.Contains(1499));
  EXPECT_FALSE(mask.Contains(2000));
  EXPECT_TRUE(mask.Contains(4600));
}

TEST(TimeMaskTest, ComplementPartitionsRange) {
  TimeMask mask({{100, 200}, {400, 500}});
  TimeMask comp = mask.Complement(0, 1000);
  EXPECT_EQ(mask.TotalDuration() + comp.TotalDuration(), 1000);
  for (TimeMs t : {0, 50, 99, 100, 150, 250, 450, 600, 999}) {
    EXPECT_NE(mask.Contains(t), comp.Contains(t)) << t;
  }
}

TEST(TimeMaskTest, FilterTrajectory) {
  Trajectory traj;
  for (int i = 0; i < 10; ++i) traj.points.push_back(MakePos(i * 100, 0, 0));
  TimeMask mask({{200, 500}});
  auto filtered = mask.Filter(traj);
  ASSERT_EQ(filtered.size(), 3u);  // t = 200, 300, 400
  EXPECT_EQ(filtered[0].t, 200);
}

// --------------------------------------------------------------- Density

TEST(DensityMapTest, CountsPerCell) {
  DensityMap map({0, 0, 10, 10}, 10, 10);
  map.Add(0.5, 0.5);
  map.Add(0.6, 0.4);
  map.Add(9.5, 9.5);
  EXPECT_EQ(map.total(), 3u);
  EXPECT_EQ(map.At(0, 0), 2u);
  EXPECT_EQ(map.At(9, 9), 1u);
}

TEST(DensityMapTest, IgnoresOutOfExtent) {
  DensityMap map({0, 0, 10, 10}, 10, 10);
  map.Add(-1, 5);
  map.Add(5, 11);
  EXPECT_EQ(map.total(), 0u);
}

TEST(DensityMapTest, AsciiRenderShapeAndOrientation) {
  DensityMap map({0, 0, 10, 10}, 5, 4);
  map.Add(0.5, 9.5);  // top-left in render (north at top)
  std::string art = map.RenderAscii();
  auto lines = StrSplit(art, '\n');
  lines.pop_back();  // trailing newline yields an empty final field
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].size(), 5u);
  EXPECT_NE(lines[0][0], ' ');
  EXPECT_EQ(lines[3][0], ' ');
}

TEST(DensityMapTest, CsvListsNonEmptyCells) {
  DensityMap map({0, 0, 10, 10}, 10, 10);
  map.Add(0.5, 0.5);
  std::string csv = map.ToCsv();
  EXPECT_NE(csv.find("0,0,1"), std::string::npos);
}

TEST(TimeHistogramTest, BinsAndLabels) {
  TimeHistogram hist(0, kMillisPerHour, 24, 3);
  hist.Add(30 * kMillisPerMinute, 0);
  hist.Add(90 * kMillisPerMinute, 1);
  hist.Add(95 * kMillisPerMinute, 1);
  EXPECT_EQ(hist.Count(0, 0), 1u);
  EXPECT_EQ(hist.Count(1, 1), 2u);
  EXPECT_EQ(hist.BinTotal(1), 2u);
}

TEST(TimeHistogramTest, OutOfRangeLabelsClampToLast) {
  TimeHistogram hist(0, 1000, 4, 2);
  hist.Add(500, 99);
  hist.Add(500, -1);
  EXPECT_EQ(hist.Count(0, 1), 2u);
}

TEST(TimeHistogramTest, OutOfRangeTimesDropped) {
  TimeHistogram hist(1000, 1000, 2, 1);
  hist.Add(0, 0);     // before t0
  hist.Add(5000, 0);  // past last bin
  EXPECT_EQ(hist.BinTotal(0) + hist.BinTotal(1), 0u);
}

// ------------------------------------------------------------- Relevance

Trajectory LineTrajectory(uint64_t id, double lat, double alt, int count) {
  Trajectory t;
  t.entity_id = id;
  for (int i = 0; i < count; ++i) {
    Position p = MakePos(i * 10000, i * 0.05, lat, alt);
    t.points.push_back(p);
  }
  return t;
}

TEST(RelevanceTest, FlagByPredicate) {
  Trajectory t = LineTrajectory(1, 40.0, 0, 10);
  t.points[3].alt_m = 9000;
  FlaggedTrajectory flagged = FlagByPredicate(
      t, [](const Position& p) { return p.alt_m < 1000; });
  EXPECT_TRUE(flagged.relevant[0]);
  EXPECT_FALSE(flagged.relevant[3]);
}

TEST(RelevanceTest, DistanceIgnoresIrrelevantParts) {
  // Two trajectories identical in their relevant (low-altitude) parts but
  // wildly different in the irrelevant parts.
  Trajectory a = LineTrajectory(1, 40.0, 0, 20);
  Trajectory b = LineTrajectory(2, 40.0, 0, 20);
  for (int i = 10; i < 20; ++i) b.points[i].lat = 45.0;  // divergent tail
  auto pred_low_i = [](const Position& p) { return p.lon < 0.5; };
  FlaggedTrajectory fa = FlagByPredicate(a, pred_low_i);
  FlaggedTrajectory fb = FlagByPredicate(b, pred_low_i);
  EXPECT_LT(RelevantPartDistanceM(fa, fb), 100.0);
  // With everything relevant the tails dominate.
  FlaggedTrajectory ga = FlagByPredicate(a, [](const Position&) {
    return true;
  });
  FlaggedTrajectory gb = FlagByPredicate(b, [](const Position&) {
    return true;
  });
  EXPECT_GT(RelevantPartDistanceM(ga, gb), 50000.0);
}

TEST(RelevanceTest, NoRelevantPointsIsInfinite) {
  Trajectory a = LineTrajectory(1, 40.0, 0, 5);
  FlaggedTrajectory fa =
      FlagByPredicate(a, [](const Position&) { return false; });
  FlaggedTrajectory fb =
      FlagByPredicate(a, [](const Position&) { return true; });
  EXPECT_TRUE(std::isinf(RelevantPartDistanceM(fa, fb)));
}

TEST(RelevanceTest, ClustersByRelevantParts) {
  // Two route families at lat 40 and lat 42.
  std::vector<FlaggedTrajectory> trajs;
  Rng rng(1);
  for (int i = 0; i < 6; ++i) {
    Trajectory t = LineTrajectory(i, 40.0 + rng.Uniform(-0.01, 0.01), 0, 15);
    trajs.push_back(FlagByPredicate(t, [](const Position&) { return true; }));
  }
  for (int i = 0; i < 6; ++i) {
    Trajectory t =
        LineTrajectory(10 + i, 42.0 + rng.Uniform(-0.01, 0.01), 0, 15);
    trajs.push_back(FlagByPredicate(t, [](const Position&) { return true; }));
  }
  auto labels = ClusterByRelevantParts(trajs, 20000.0, 3, 3);
  EXPECT_EQ(*std::max_element(labels.begin(), labels.end()), 1);
  for (int i = 1; i < 6; ++i) EXPECT_EQ(labels[i], labels[0]);
  for (int i = 7; i < 12; ++i) EXPECT_EQ(labels[i], labels[6]);
  EXPECT_NE(labels[0], labels[6]);
}

// ------------------------------------------------------------ PointMatch

TEST(PointMatchTest, PerfectMatch) {
  Trajectory t = LineTrajectory(1, 40.0, 0, 20);
  PointMatchResult r = MatchTrajectories(t, t, PointMatchOptions{});
  EXPECT_EQ(r.matched_points, 20u);
  EXPECT_DOUBLE_EQ(r.matched_proportion, 1.0);
  EXPECT_NEAR(r.mean_matched_distance_m, 0.0, 1e-9);
}

TEST(PointMatchTest, OffsetBeyondToleranceFails) {
  Trajectory a = LineTrajectory(1, 40.0, 0, 20);
  Trajectory b = LineTrajectory(1, 40.5, 0, 20);  // ~55 km offset
  PointMatchOptions options;
  options.max_distance_m = 2000;
  PointMatchResult r = MatchTrajectories(a, b, options);
  EXPECT_EQ(r.matched_points, 0u);
}

TEST(PointMatchTest, TimeToleranceMatters) {
  Trajectory a = LineTrajectory(1, 40.0, 0, 20);
  Trajectory b = a;
  for (auto& p : b.points) p.t += 60000;  // shifted 60 s
  PointMatchOptions options;
  options.max_time_diff_ms = 30000;
  // Same locations exist but at excluded times... points are spaced 10 s,
  // so every a-point still finds b-points within 30 s — but those are
  // spatially earlier along the line.
  options.max_distance_m = 100.0;
  PointMatchResult r = MatchTrajectories(a, b, options);
  EXPECT_LT(r.matched_proportion, 1.0);
}

TEST(PointMatchTest, PartialOverlap) {
  Trajectory a = LineTrajectory(1, 40.0, 0, 20);
  Trajectory b = a;
  for (int i = 10; i < 20; ++i) b.points[i].lat += 0.5;  // diverge midway
  PointMatchOptions options;
  options.max_distance_m = 1000;
  PointMatchResult r = MatchTrajectories(a, b, options);
  EXPECT_NEAR(r.matched_proportion, 0.5, 0.1);
}

TEST(PointMatchTest, BatchReportFindsOutliers) {
  std::vector<Trajectory> predicted, actual;
  for (int i = 0; i < 9; ++i) {
    predicted.push_back(LineTrajectory(i, 40.0, 0, 20));
    actual.push_back(LineTrajectory(i, 40.0, 0, 20));
  }
  // Pair 9: prediction totally off.
  predicted.push_back(LineTrajectory(9, 40.0, 0, 20));
  actual.push_back(LineTrajectory(9, 43.0, 0, 20));
  BatchMatchReport report =
      MatchBatch(predicted, actual, PointMatchOptions{}, 0.5);
  ASSERT_EQ(report.pairs.size(), 10u);
  ASSERT_EQ(report.outliers.size(), 1u);
  EXPECT_EQ(report.outliers[0], 9u);
  // Histogram: 9 in the top bucket, 1 in the bottom.
  EXPECT_EQ(report.proportion_histogram.bucket(9), 9u);
  EXPECT_EQ(report.proportion_histogram.bucket(0), 1u);
}

TEST(PointMatchTest, EmptyTrajectoriesSafe) {
  Trajectory empty;
  Trajectory t = LineTrajectory(1, 40.0, 0, 5);
  PointMatchResult r = MatchTrajectories(empty, t, PointMatchOptions{});
  EXPECT_EQ(r.predicted_points, 0u);
  r = MatchTrajectories(t, empty, PointMatchOptions{});
  EXPECT_EQ(r.matched_points, 0u);
}


// ---------------------------------------------------------------- Demand

TEST(DemandTest, CountsEntriesPerBin) {
  SectorDemandMonitor monitor(kMillisPerHour);
  monitor.RecordEntry(1, 10 * kMillisPerMinute);
  monitor.RecordEntry(1, 50 * kMillisPerMinute);
  monitor.RecordEntry(1, 70 * kMillisPerMinute);  // next hour
  monitor.RecordEntry(2, 10 * kMillisPerMinute);
  EXPECT_EQ(monitor.Demand(1, 30 * kMillisPerMinute), 2u);
  EXPECT_EQ(monitor.Demand(1, 90 * kMillisPerMinute), 1u);
  EXPECT_EQ(monitor.Demand(2, 0), 1u);
  EXPECT_EQ(monitor.Demand(99, 0), 0u);
  EXPECT_EQ(monitor.total_entries(), 4u);
}

TEST(DemandTest, DetectsOverloadsAgainstCapacity) {
  SectorDemandMonitor monitor(kMillisPerHour);
  for (int i = 0; i < 12; ++i) monitor.RecordEntry(1, i * 1000);
  for (int i = 0; i < 5; ++i) monitor.RecordEntry(2, i * 1000);
  std::unordered_map<uint64_t, size_t> capacities = {{1, 10}, {2, 10}};
  auto overloads = monitor.DetectOverloads(capacities, 10);
  ASSERT_EQ(overloads.size(), 1u);
  EXPECT_EQ(overloads[0].sector, 1u);
  EXPECT_EQ(overloads[0].demand, 12u);
  EXPECT_EQ(overloads[0].capacity, 10u);
}

TEST(DemandTest, DefaultCapacityApplies) {
  SectorDemandMonitor monitor(kMillisPerHour);
  for (int i = 0; i < 4; ++i) monitor.RecordEntry(7, i * 1000);
  auto overloads = monitor.DetectOverloads({}, 3);
  ASSERT_EQ(overloads.size(), 1u);
  EXPECT_EQ(overloads[0].sector, 7u);
}

TEST(DemandTest, SeasonalNaiveForecast) {
  SectorDemandMonitor monitor(kMillisPerHour);
  // Three days of history: the 09:00 hour gets 6, 8 and 10 entries.
  int per_day[] = {6, 8, 10};
  for (int day = 0; day < 3; ++day) {
    TimeMs base = day * 24 * kMillisPerHour + 9 * kMillisPerHour;
    for (int i = 0; i < per_day[day]; ++i) {
      monitor.RecordEntry(1, base + i * 1000);
    }
  }
  // Forecast for 09:00 on day 4 = mean(6, 8, 10) = 8.
  TimeMs probe = 3 * 24 * kMillisPerHour + 9 * kMillisPerHour;
  EXPECT_NEAR(monitor.ForecastDemand(1, probe), 8.0, 1e-9);
  // A quiet hour forecasts 0 (bins with no entries count as 0).
  TimeMs quiet = 3 * 24 * kMillisPerHour + 3 * kMillisPerHour;
  EXPECT_NEAR(monitor.ForecastDemand(1, quiet), 0.0, 1e-9);
}

TEST(DemandTest, ForecastWithoutHistoryIsZero) {
  SectorDemandMonitor monitor(kMillisPerHour);
  EXPECT_DOUBLE_EQ(monitor.ForecastDemand(1, kMillisPerHour), 0.0);
}

// --------------------------------------------------------------- Quality


/// Slow-moving trajectory with physically plausible implied speeds
/// (~8.5 m/s), for the data-quality tests.
Trajectory SlowTrajectory(uint64_t id, int count) {
  Trajectory t;
  t.entity_id = id;
  for (int i = 0; i < count; ++i) {
    t.points.push_back(MakePos(i * 10000, i * 0.001, 40.0));
  }
  return t;
}

TEST(QualityTest, CleanDataIsClean) {
  std::vector<Trajectory> trajs = {SlowTrajectory(1, 50)};
  QualityReport report = AssessQuality(trajs, QualityOptions{});
  EXPECT_EQ(report.entities, 1u);
  EXPECT_EQ(report.positions, 50u);
  EXPECT_EQ(report.duplicate_timestamps, 0u);
  EXPECT_EQ(report.out_of_order, 0u);
  EXPECT_EQ(report.speed_spikes, 0u);
  EXPECT_NEAR(report.report_interval_s.mean(), 10.0, 1e-9);
}

TEST(QualityTest, DetectsDuplicatesAndOutOfOrder) {
  Trajectory t = SlowTrajectory(1, 10);
  t.points[5].t = t.points[4].t;            // duplicate
  t.points[8].t = t.points[7].t - 5000;     // out of order
  QualityReport report = AssessQuality({t}, QualityOptions{});
  EXPECT_EQ(report.duplicate_timestamps, 1u);
  EXPECT_EQ(report.out_of_order, 1u);
}

TEST(QualityTest, DetectsGapsAndSpikes) {
  Trajectory t = SlowTrajectory(1, 20);
  for (int i = 10; i < 20; ++i) t.points[i].t += 20 * kMillisPerMinute;
  t.points[15].lon += 2.0;  // teleport: speed spike (both directions)
  QualityReport report = AssessQuality({t}, QualityOptions{});
  EXPECT_EQ(report.gaps, 1u);
  EXPECT_GE(report.speed_spikes, 1u);
}

TEST(QualityTest, DetectsRoundedCoordinates) {
  Trajectory t;
  for (int i = 0; i < 10; ++i) {
    t.points.push_back(MakePos(i * 10000, 2.05, 41.37));  // 0.01 lattice
  }
  QualityReport report = AssessQuality({t}, QualityOptions{});
  EXPECT_EQ(report.coordinate_rounding_suspects, 10u);
}

TEST(QualityTest, SingleReportEntities) {
  Trajectory t;
  t.points.push_back(MakePos(0, 1, 40));
  QualityReport report = AssessQuality({t}, QualityOptions{});
  EXPECT_EQ(report.single_report_entities, 1u);
}

TEST(QualityTest, RenderMentionsAllSections) {
  QualityReport report = AssessQuality({}, QualityOptions{});
  std::string text = report.Render();
  EXPECT_NE(text.find("temporal"), std::string::npos);
  EXPECT_NE(text.find("spatial"), std::string::npos);
  EXPECT_NE(text.find("mover set"), std::string::npos);
}

}  // namespace
}  // namespace tcmf::va
