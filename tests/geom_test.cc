#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geom/geo.h"
#include "geom/geometry.h"
#include "geom/grid.h"
#include "geom/stcell.h"

namespace tcmf::geom {
namespace {

// ------------------------------------------------------------------- Geo

TEST(GeoTest, NormalizeDeg) {
  EXPECT_DOUBLE_EQ(NormalizeDeg(370.0), 10.0);
  EXPECT_DOUBLE_EQ(NormalizeDeg(-10.0), 350.0);
  EXPECT_DOUBLE_EQ(NormalizeDeg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeDeg(720.0), 0.0);
}

TEST(GeoTest, AngleDiff) {
  EXPECT_DOUBLE_EQ(AngleDiffDeg(10.0, 350.0), 20.0);
  EXPECT_DOUBLE_EQ(AngleDiffDeg(350.0, 10.0), -20.0);
  EXPECT_DOUBLE_EQ(AngleDiffDeg(180.0, 0.0), 180.0);
  EXPECT_DOUBLE_EQ(AngleDiffDeg(90.0, 90.0), 0.0);
}

TEST(GeoTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  double d = HaversineM(0.0, 0.0, 0.0, 1.0);
  EXPECT_NEAR(d, 111195.0, 100.0);
}

TEST(GeoTest, HaversineZero) {
  EXPECT_DOUBLE_EQ(HaversineM(5.0, 40.0, 5.0, 40.0), 0.0);
}

TEST(GeoTest, HaversineSymmetric) {
  EXPECT_DOUBLE_EQ(HaversineM(2.0, 41.0, -3.5, 40.5),
                   HaversineM(-3.5, 40.5, 2.0, 41.0));
}

TEST(GeoTest, BearingCardinal) {
  LonLat origin{0.0, 40.0};
  EXPECT_NEAR(BearingDeg(origin, {0.0, 41.0}), 0.0, 0.1);     // north
  EXPECT_NEAR(BearingDeg(origin, {1.0, 40.0}), 90.0, 0.5);    // east
  EXPECT_NEAR(BearingDeg(origin, {0.0, 39.0}), 180.0, 0.1);   // south
  EXPECT_NEAR(BearingDeg(origin, {-1.0, 40.0}), 270.0, 0.5);  // west
}

TEST(GeoTest, DestinationRoundTrip) {
  LonLat a{2.1, 41.4};
  for (double bearing : {0.0, 45.0, 133.0, 278.0}) {
    LonLat b = Destination(a, bearing, 25000.0);
    EXPECT_NEAR(HaversineM(a, b), 25000.0, 1.0);
    EXPECT_NEAR(BearingDeg(a, b), bearing, 0.2);
  }
}

TEST(GeoTest, EnuRoundTrip) {
  LonLat ref{5.0, 43.0};
  LonLat p{5.3, 43.2};
  Enu e = ToEnu(ref, p);
  LonLat back = FromEnu(ref, e);
  EXPECT_NEAR(back.lon, p.lon, 1e-9);
  EXPECT_NEAR(back.lat, p.lat, 1e-9);
}

TEST(GeoTest, EnuApproximatesHaversine) {
  LonLat ref{5.0, 43.0};
  LonLat p{5.1, 43.05};
  Enu e = ToEnu(ref, p);
  EXPECT_NEAR(std::hypot(e.x, e.y), HaversineM(ref, p),
              HaversineM(ref, p) * 0.01);
}

TEST(GeoTest, Distance3dIncludesAltitude) {
  Position a, b;
  a.lon = b.lon = 3.0;
  a.lat = b.lat = 40.0;
  a.alt_m = 0;
  b.alt_m = 3000;
  EXPECT_DOUBLE_EQ(Distance3dM(a, b), 3000.0);
}

TEST(GeoTest, CrossTrackOnTrackIsZero) {
  // Meridians are great circles: points on the track have zero cross-track.
  LonLat a{3.0, 40.0}, b{3.0, 42.0};
  LonLat mid{3.0, 41.0};
  EXPECT_NEAR(CrossTrackM(a, b, mid), 0.0, 1.0);
}

TEST(GeoTest, CrossTrackOffset) {
  LonLat a{0.0, 40.0}, b{0.0, 42.0};  // northbound track
  LonLat p{0.1, 41.0};                // east of track
  EXPECT_NEAR(CrossTrackM(a, b, p), HaversineM(0.0, 41.0, 0.1, 41.0), 100.0);
}

// -------------------------------------------------------------- Geometry

TEST(BBoxTest, ContainsAndIntersects) {
  BBox box{0, 0, 10, 5};
  EXPECT_TRUE(box.Contains(5, 2));
  EXPECT_TRUE(box.Contains(0, 0));   // inclusive edges
  EXPECT_TRUE(box.Contains(10, 5));
  EXPECT_FALSE(box.Contains(-1, 2));
  EXPECT_FALSE(box.Contains(5, 6));
  EXPECT_TRUE(box.Intersects({9, 4, 12, 8}));
  EXPECT_FALSE(box.Intersects({11, 0, 12, 5}));
}

TEST(PolygonTest, SquareContains) {
  Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_TRUE(sq.Contains(0.5, 0.5));
  EXPECT_FALSE(sq.Contains(1.5, 0.5));
  EXPECT_FALSE(sq.Contains(0.5, -0.1));
}

TEST(PolygonTest, ExplicitClosureDropped) {
  Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0, 0}});
  EXPECT_EQ(sq.ring().size(), 4u);
  EXPECT_TRUE(sq.Contains(0.5, 0.5));
}

TEST(PolygonTest, ConcavePolygon) {
  // A "U" shape: the notch interior is outside.
  Polygon u({{0, 0}, {3, 0}, {3, 3}, {2, 3}, {2, 1}, {1, 1}, {1, 3}, {0, 3}});
  EXPECT_TRUE(u.Contains(0.5, 2.0));   // left arm
  EXPECT_TRUE(u.Contains(2.5, 2.0));   // right arm
  EXPECT_FALSE(u.Contains(1.5, 2.0));  // notch
  EXPECT_TRUE(u.Contains(1.5, 0.5));   // base
}

TEST(PolygonTest, BBoxComputed) {
  Polygon p({{2, 3}, {5, 1}, {4, 6}});
  EXPECT_DOUBLE_EQ(p.bbox().min_lon, 2);
  EXPECT_DOUBLE_EQ(p.bbox().max_lon, 5);
  EXPECT_DOUBLE_EQ(p.bbox().min_lat, 1);
  EXPECT_DOUBLE_EQ(p.bbox().max_lat, 6);
}

TEST(PolygonTest, CircleContainsCenterNotOutside) {
  LonLat c{5.0, 40.0};
  Polygon circle = Polygon::Circle(c, 10000.0, 32);
  EXPECT_TRUE(circle.Contains(c));
  LonLat outside = Destination(c, 90.0, 15000.0);
  EXPECT_FALSE(circle.Contains(outside));
  LonLat inside = Destination(c, 90.0, 5000.0);
  EXPECT_TRUE(circle.Contains(inside));
}

TEST(PolygonTest, DistanceInsideIsZero) {
  Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_DOUBLE_EQ(sq.DistanceM({0.5, 0.5}), 0.0);
}

TEST(PolygonTest, DistanceOutside) {
  LonLat c{5.0, 40.0};
  Polygon circle = Polygon::Circle(c, 10000.0, 64);
  LonLat p = Destination(c, 0.0, 20000.0);
  EXPECT_NEAR(circle.DistanceM(p), 10000.0, 300.0);
}

TEST(PolygonTest, CentroidOfSquare) {
  Polygon sq({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  LonLat c = sq.Centroid();
  EXPECT_NEAR(c.lon, 1.0, 1e-12);
  EXPECT_NEAR(c.lat, 1.0, 1e-12);
}

TEST(PolygonTest, PlanarAreaOfUnitSquare) {
  Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_NEAR(sq.PlanarArea(), 1.0, 1e-12);
}

TEST(PointSegmentTest, PerpendicularAndEndpoints) {
  LonLat a{0.0, 40.0}, b{1.0, 40.0};
  // Point above the middle of the segment.
  LonLat mid{0.5, 40.1};
  EXPECT_NEAR(PointSegmentDistanceM(mid, a, b),
              HaversineM(0.5, 40.0, 0.5, 40.1), 200.0);
  // Point beyond endpoint a clamps to a.
  LonLat beyond{-0.5, 40.0};
  EXPECT_NEAR(PointSegmentDistanceM(beyond, a, b), HaversineM(beyond, a),
              200.0);
}

// ------------------------------------------------------------------- WKT

TEST(WktTest, PointRoundTrip) {
  LonLat p{-3.5671, 40.4912};
  auto parsed = ParseWktPoint(ToWktPoint(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_NEAR(parsed.value().lon, p.lon, 1e-6);
  EXPECT_NEAR(parsed.value().lat, p.lat, 1e-6);
}

TEST(WktTest, PointCaseInsensitive) {
  auto parsed = ParseWktPoint("point (1.5 2.5)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().lon, 1.5);
}

TEST(WktTest, PointRejectsBadInput) {
  EXPECT_FALSE(ParseWktPoint("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(ParseWktPoint("POINT (1)").ok());
  EXPECT_FALSE(ParseWktPoint("POINT (a b)").ok());
}

TEST(WktTest, LineStringRoundTrip) {
  std::vector<LonLat> pts{{0, 0}, {1, 0.5}, {2, 1}};
  auto parsed = ParseWktLineString(ToWktLineString(pts));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 3u);
  EXPECT_NEAR(parsed.value()[1].lat, 0.5, 1e-6);
}

TEST(WktTest, PolygonRoundTrip) {
  Polygon sq({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  auto parsed = ParseWktPolygon(ToWktPolygon(sq));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ring().size(), 4u);
  EXPECT_TRUE(parsed.value().Contains(0.5, 0.5));
}

TEST(WktTest, PolygonRejectsTooFewVertices) {
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 1, 0 0))").ok());
}

// ------------------------------------------------------------------ Grid

TEST(EquiGridTest, CellAssignment) {
  EquiGrid grid({0, 0, 10, 10}, 10, 10);
  EXPECT_EQ(grid.CellOf(0.5, 0.5), 0u);
  EXPECT_EQ(grid.CellOf(9.5, 0.5), 9u);
  EXPECT_EQ(grid.CellOf(0.5, 9.5), 90u);
  EXPECT_EQ(grid.CellOf(9.5, 9.5), 99u);
}

TEST(EquiGridTest, OutOfExtentClamps) {
  EquiGrid grid({0, 0, 10, 10}, 10, 10);
  EXPECT_EQ(grid.CellOf(-5, -5), 0u);
  EXPECT_EQ(grid.CellOf(15, 15), 99u);
}

TEST(EquiGridTest, CellBoundsInverse) {
  EquiGrid grid({-6, 35, 10, 44}, 32, 16);
  for (uint32_t cell : {0u, 5u, 100u, 511u}) {
    BBox b = grid.CellBounds(cell);
    double lon = (b.min_lon + b.max_lon) / 2;
    double lat = (b.min_lat + b.max_lat) / 2;
    EXPECT_EQ(grid.CellOf(lon, lat), cell);
  }
}

TEST(EquiGridTest, CellsIntersecting) {
  EquiGrid grid({0, 0, 10, 10}, 10, 10);
  auto cells = grid.CellsIntersecting({1.5, 1.5, 3.5, 2.5});
  // Columns 1-3, rows 1-2 -> 6 cells.
  EXPECT_EQ(cells.size(), 6u);
}

TEST(EquiGridTest, NeighborhoodInterior) {
  EquiGrid grid({0, 0, 10, 10}, 10, 10);
  EXPECT_EQ(grid.Neighborhood(55).size(), 9u);
}

TEST(EquiGridTest, NeighborhoodCorner) {
  EquiGrid grid({0, 0, 10, 10}, 10, 10);
  EXPECT_EQ(grid.Neighborhood(0).size(), 4u);
  EXPECT_EQ(grid.Neighborhood(99).size(), 4u);
}

TEST(EquiGridTest, DegenerateSingleCell) {
  EquiGrid grid({0, 0, 10, 10}, 0, 0);
  EXPECT_EQ(grid.cell_count(), 1u);
  EXPECT_EQ(grid.CellOf(5, 5), 0u);
}

// ---------------------------------------------------------------- StCell

TEST(MortonTest, RoundTrip) {
  for (uint16_t x : {0, 1, 255, 65535}) {
    for (uint16_t y : {0, 7, 1024}) {
      uint32_t z = MortonInterleave16(x, y);
      uint16_t rx, ry;
      MortonDeinterleave16(z, &rx, &ry);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
}

TEST(MortonTest, KnownValues) {
  EXPECT_EQ(MortonInterleave16(0, 0), 0u);
  EXPECT_EQ(MortonInterleave16(1, 0), 1u);
  EXPECT_EQ(MortonInterleave16(0, 1), 2u);
  EXPECT_EQ(MortonInterleave16(1, 1), 3u);
}

class StCellTest : public ::testing::Test {
 protected:
  BBox extent_{-6, 35, 10, 44};
  StCellEncoder encoder_{extent_, 8, 0, kMillisPerHour};
};

TEST_F(StCellTest, EncodeDecodeConsistent) {
  double lon = 2.5, lat = 41.2;
  TimeMs t = 5 * kMillisPerHour + 12345;
  uint64_t id = encoder_.Encode(lon, lat, t);
  StCellEncoder::Cell cell = encoder_.Decode(id);
  EXPECT_TRUE(cell.bounds.Contains(lon, lat));
  EXPECT_GE(t, cell.t_begin);
  EXPECT_LT(t, cell.t_end);
}

TEST_F(StCellTest, DifferentTimesDifferentIds) {
  uint64_t a = encoder_.Encode(2.5, 41.2, 0);
  uint64_t b = encoder_.Encode(2.5, 41.2, 2 * kMillisPerHour);
  EXPECT_NE(a, b);
}

TEST_F(StCellTest, MayIntersectTrueForContainingBox) {
  uint64_t id = encoder_.Encode(2.5, 41.2, kMillisPerHour);
  StCellEncoder::StBox box;
  box.bounds = {2.0, 41.0, 3.0, 42.0};
  box.t_begin = 0;
  box.t_end = 3 * kMillisPerHour;
  EXPECT_TRUE(encoder_.MayIntersect(id, box));
}

TEST_F(StCellTest, MayIntersectFalseForDisjointSpace) {
  uint64_t id = encoder_.Encode(2.5, 41.2, kMillisPerHour);
  StCellEncoder::StBox box;
  box.bounds = {-5.9, 35.1, -5.0, 36.0};
  box.t_begin = 0;
  box.t_end = 3 * kMillisPerHour;
  EXPECT_FALSE(encoder_.MayIntersect(id, box));
}

TEST_F(StCellTest, MayIntersectFalseForDisjointTime) {
  uint64_t id = encoder_.Encode(2.5, 41.2, 10 * kMillisPerHour);
  StCellEncoder::StBox box;
  box.bounds = {2.0, 41.0, 3.0, 42.0};
  box.t_begin = 0;
  box.t_end = 2 * kMillisPerHour;
  EXPECT_FALSE(encoder_.MayIntersect(id, box));
}

TEST_F(StCellTest, NoFalseNegatives) {
  // Property: any point inside the query box must have MayIntersect true.
  Rng rng(3);
  StCellEncoder::StBox box;
  box.bounds = {0.0, 38.0, 4.0, 41.0};
  box.t_begin = 2 * kMillisPerHour;
  box.t_end = 9 * kMillisPerHour;
  for (int i = 0; i < 500; ++i) {
    double lon = rng.Uniform(box.bounds.min_lon, box.bounds.max_lon);
    double lat = rng.Uniform(box.bounds.min_lat, box.bounds.max_lat);
    TimeMs t = static_cast<TimeMs>(
        rng.Uniform(static_cast<double>(box.t_begin),
                    static_cast<double>(box.t_end)));
    uint64_t id = encoder_.Encode(lon, lat, t);
    EXPECT_TRUE(encoder_.MayIntersect(id, box))
        << "lon=" << lon << " lat=" << lat << " t=" << t;
  }
}

// ---------------------------------------------------- Grid boundary audit
//
// Pins down EquiGrid's boundary semantics so every SpatialIndex backend
// is held to the contract the rtree oracle checks. Integer extent and
// power-of-two tiling keep every boundary exactly representable, so
// these are exact expectations, not approximations.

class GridBoundaryTest : public ::testing::Test {
 protected:
  // 8x8 cells of exactly 1 degree over [0,8]x[0,8].
  EquiGrid grid_{BBox{0.0, 0.0, 8.0, 8.0}, 8, 8};
};

TEST_F(GridBoundaryTest, PointOnInteriorCellEdgeMapsToUpperCell) {
  // A point exactly on the shared edge of cells (2,*) and (3,*) belongs
  // to the upper cell: intervals are [min, next_min).
  uint32_t col, row;
  grid_.ColRowOf(3.0, 5.0, &col, &row);
  EXPECT_EQ(col, 3u);
  EXPECT_EQ(row, 5u);
  // Just below the edge stays in the lower cell.
  grid_.ColRowOf(std::nextafter(3.0, 0.0), 5.0, &col, &row);
  EXPECT_EQ(col, 2u);
  // The corner point shared by four cells belongs to the upper-right.
  EXPECT_EQ(grid_.CellOf(4.0, 4.0), grid_.CellIndex(4, 4));
}

TEST_F(GridBoundaryTest, ExtentMaxClampsIntoLastCell) {
  // The extent's max edge is not an open boundary: it clamps into the
  // last cell instead of falling off the grid.
  EXPECT_EQ(grid_.CellOf(8.0, 8.0), grid_.CellIndex(7, 7));
  EXPECT_EQ(grid_.CellOf(8.0, 0.0), grid_.CellIndex(7, 0));
}

TEST_F(GridBoundaryTest, OutOfExtentClampsToEdgeCells) {
  EXPECT_EQ(grid_.CellOf(-3.0, -2.0), grid_.CellIndex(0, 0));
  EXPECT_EQ(grid_.CellOf(100.0, 100.0), grid_.CellIndex(7, 7));
  EXPECT_EQ(grid_.CellOf(4.5, -1.0), grid_.CellIndex(4, 0));
}

TEST_F(GridBoundaryTest, CellBoundsTileExactly) {
  // Adjacent cells share edges bit-exactly, no gaps and no overlap, and
  // every cell's min corner maps back to that cell.
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      BBox b = grid_.CellBounds(grid_.CellIndex(c, r));
      EXPECT_EQ(b.min_lon, static_cast<double>(c));
      EXPECT_EQ(b.max_lon, static_cast<double>(c) + 1.0);
      EXPECT_EQ(b.min_lat, static_cast<double>(r));
      EXPECT_EQ(b.max_lat, static_cast<double>(r) + 1.0);
      EXPECT_EQ(grid_.CellOf(b.min_lon, b.min_lat), grid_.CellIndex(c, r));
      if (c + 1 < 8) {
        BBox right = grid_.CellBounds(grid_.CellIndex(c + 1, r));
        EXPECT_EQ(b.max_lon, right.min_lon);
      }
    }
  }
}

TEST_F(GridBoundaryTest, QueryBoxEdgeExactlyOnCellEdgeIncludesUpperCell) {
  // A query box whose max edge lies exactly on a cell boundary includes
  // the cell on the far side of that edge — consistent with the point
  // rule above, so a point on the edge is always found by a box query
  // ending on the edge.
  std::vector<uint32_t> cells = grid_.CellsIntersecting({1.0, 1.0, 3.0, 2.0});
  // Columns 1..3 x rows 1..2 = 6 cells.
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_TRUE(std::find(cells.begin(), cells.end(), grid_.CellIndex(3, 2)) !=
              cells.end());
  EXPECT_TRUE(std::find(cells.begin(), cells.end(), grid_.CellIndex(1, 1)) !=
              cells.end());
}

TEST_F(GridBoundaryTest, ZeroSizedQueryBoxOnCornerReturnsSingleUpperCell) {
  std::vector<uint32_t> cells = grid_.CellsIntersecting({2.0, 2.0, 2.0, 2.0});
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0], grid_.CellIndex(2, 2));
}

TEST_F(GridBoundaryTest, QueryBoxBeyondExtentClipsToGrid) {
  std::vector<uint32_t> cells =
      grid_.CellsIntersecting({-10.0, -10.0, 100.0, 100.0});
  EXPECT_EQ(cells.size(), 64u);  // every cell, exactly once
  std::set<uint32_t> unique(cells.begin(), cells.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST_F(GridBoundaryTest, NeighborhoodClipsAtCorners) {
  EXPECT_EQ(grid_.Neighborhood(grid_.CellIndex(0, 0)).size(), 4u);
  EXPECT_EQ(grid_.Neighborhood(grid_.CellIndex(7, 7)).size(), 4u);
  EXPECT_EQ(grid_.Neighborhood(grid_.CellIndex(0, 3)).size(), 6u);
  EXPECT_EQ(grid_.Neighborhood(grid_.CellIndex(4, 4)).size(), 9u);
}

}  // namespace
}  // namespace tcmf::geom
