// Differential equivalence harness for the batched channel transport and
// operator fusion (the correctness lock for PushBatch/PopBatch +
// BatchPolicy + Flow::Fuse): seeded random operator graphs over simulated
// vessel records are executed several ways — record-at-a-time, batched,
// fused+batched, adaptive-batch, elastic-capacity (live channel Resize
// driven by the CapacityTuner) and latency-budget linger — across batch
// sizes {1, 7, 64, 1024}, channel capacities {1, 2, 1024} and worker
// counts, and every execution must produce the exact same output
// multiset. Batch boundaries, live resizes and budget-tightened flush
// timing are implementation details; if they ever become observable,
// these tests fail.
//
// Also: shutdown/cancellation stress under batching (sink cancels
// mid-batch, source closes mid-linger, parallel keyed teardown) — the PR 1
// shutdown contract must survive the batched transport.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "stream/channel.h"
#include "stream/pipeline.h"
#include "stream/sharded.h"

namespace tcmf::stream {
namespace {

// A simulated vessel record: entity id, event time, measured value.
struct VRec {
  uint64_t id = 0;
  int64_t t = 0;
  double v = 0.0;
};

bool VRecLess(const VRec& a, const VRec& b) {
  return std::tie(a.id, a.t, a.v) < std::tie(b.id, b.t, b.v);
}

bool VRecEq(const VRec& a, const VRec& b) {
  // Exact comparison is intentional: the same per-key fold order must
  // yield bit-identical doubles in every execution mode.
  return a.id == b.id && a.t == b.t && a.v == b.v;
}

/// Canonical multiset form: sorted by (id, t, v).
std::vector<VRec> Canon(std::vector<VRec> v) {
  std::sort(v.begin(), v.end(), VRecLess);
  return v;
}

/// Vessel-ish input: per-key mostly-increasing event times with
/// occasional backward jitter (exercises window late-drops identically in
/// every mode, since lateness is per-key and per-key order is preserved).
std::vector<VRec> MakeVesselRecords(uint64_t seed, size_t n) {
  Rng rng(seed);
  const uint64_t keys = 1 + static_cast<uint64_t>(rng.UniformInt(0, 15));
  std::vector<int64_t> clock(keys, 0);
  std::vector<VRec> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VRec r;
    r.id = static_cast<uint64_t>(rng.UniformInt(0, static_cast<int>(keys) - 1));
    int64_t step = rng.UniformInt(-1500, 4000);
    clock[r.id] = std::max<int64_t>(0, clock[r.id] + step);
    r.t = clock[r.id];
    r.v = rng.Uniform(0.0, 10.0);
    out.push_back(r);
  }
  return out;
}

// ------------------------------------------------- random operator graphs

enum class OpKind { kMap, kFilter, kFlatMap, kKeyed, kKeyedPar, kWindow };

struct OpSpec {
  OpKind kind;
  int a = 0;  // filter modulus / parallelism / window_ms
  int b = 0;  // window lateness_ms
};

bool Stateless(OpKind k) {
  return k == OpKind::kMap || k == OpKind::kFilter || k == OpKind::kFlatMap;
}

std::vector<OpSpec> RandomGraph(uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  const int len = rng.UniformInt(2, 6);
  std::vector<OpSpec> ops;
  for (int i = 0; i < len; ++i) {
    OpSpec op;
    switch (rng.UniformInt(0, 5)) {
      case 0: op.kind = OpKind::kMap; break;
      case 1:
        op.kind = OpKind::kFilter;
        op.a = rng.UniformInt(2, 4);
        break;
      case 2: op.kind = OpKind::kFlatMap; break;
      case 3: op.kind = OpKind::kKeyed; break;
      case 4:
        op.kind = OpKind::kKeyedPar;
        op.a = rng.UniformInt(2, 4);
        break;
      default:
        op.kind = OpKind::kWindow;
        op.a = rng.UniformInt(0, 1) ? 5000 : 20000;
        op.b = rng.UniformInt(0, 1) ? 0 : 2000;
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

// The per-op transforms — shared verbatim by the unfused and fused
// builders so the only difference under test is the execution strategy.
VRec MapFn(const VRec& r) { return VRec{r.id, r.t, r.v * 1.5 + r.id}; }

bool FilterFn(int m, const VRec& r) {
  return (static_cast<uint64_t>(r.t) + r.id) % static_cast<uint64_t>(m) != 0;
}

std::vector<VRec> FlatMapFn(const VRec& r) {
  std::vector<VRec> out;
  const int64_t copies = r.t % 3;
  for (int64_t i = 0; i < copies; ++i) {
    out.push_back(VRec{r.id, r.t + i, r.v + static_cast<double>(i)});
  }
  return out;
}

struct WinAcc {
  double sum = 0.0;
  uint64_t n = 0;
};

uint64_t KeyFn(const VRec& r) { return r.id; }

// The keyed running-sum fold — shared verbatim by the plain, two-hop and
// fused-keyed constructions so only the execution strategy differs.
void KeyedSumFn(const VRec& r, double& sum,
                const std::function<void(VRec)>& emit) {
  sum += r.v;
  emit(VRec{r.id, r.t, sum});
}

Flow<VRec> ApplyStateful(Flow<VRec> flow, const OpSpec& op,
                         const StageOptions& base) {
  switch (op.kind) {
    case OpKind::kKeyed:
      return flow.KeyedProcess<VRec, double>(KeyFn, KeyedSumFn, nullptr,
                                             StageOptions(base));
    case OpKind::kKeyedPar:
      return flow.KeyedProcessParallel<VRec, double>(
          KeyFn, KeyedSumFn, static_cast<size_t>(op.a), nullptr,
          StageOptions(base));
    case OpKind::kWindow: {
      using Result = std::pair<uint64_t,
                               TumblingWindower<VRec, WinAcc>::WindowResult>;
      return flow
          .KeyedTumblingWindow<WinAcc>(
              [](const VRec& r) { return r.id; },
              [](const VRec& r) { return static_cast<TimeMs>(r.t); },
              op.a, op.b,
              [](WinAcc& acc, const VRec& r, TimeMs) {
                acc.sum += r.v;
                ++acc.n;
              },
              StageOptions(base))
          .Map<VRec>(
              [](const Result& w) {
                return VRec{w.first, static_cast<int64_t>(w.second.window_start),
                            w.second.value.sum +
                                static_cast<double>(w.second.value.n)};
              },
              StageOptions(base));
    }
    default:
      ADD_FAILURE() << "stateless op routed to ApplyStateful";
      return flow;
  }
}

Flow<VRec> ApplyStatelessOp(Flow<VRec> flow, const OpSpec& op,
                            const StageOptions& base) {
  switch (op.kind) {
    case OpKind::kMap:
      return flow.Map<VRec>(MapFn, StageOptions(base));
    case OpKind::kFilter: {
      const int m = op.a;
      return flow.Filter([m](const VRec& r) { return FilterFn(m, r); },
                         StageOptions(base));
    }
    default:
      return flow.FlatMap<VRec>(FlatMapFn, StageOptions(base));
  }
}

/// Extends a fused chain with one stateless op (same transforms as
/// ApplyStatelessOp, fused spelling).
FusedChain<VRec, VRec> FuseOp(FusedChain<VRec, VRec> chain,
                              const OpSpec& op) {
  switch (op.kind) {
    case OpKind::kMap:
      return chain.Map<VRec>(MapFn);
    case OpKind::kFilter: {
      const int m = op.a;
      return chain.Filter([m](const VRec& r) { return FilterFn(m, r); });
    }
    default:
      return chain.FlatMap<VRec>(FlatMapFn);
  }
}

/// Fuses a maximal run of stateless ops into one stage.
Flow<VRec> ApplyFusedRun(Flow<VRec> flow, const std::vector<OpSpec>& ops,
                         size_t begin, size_t end, const StageOptions& base) {
  FusedChain<VRec, VRec> chain = flow.Fuse();
  for (size_t i = begin; i < end; ++i) chain = FuseOp(chain, ops[i]);
  return chain.Emit(StageOptions(base));
}

/// Threads `flow` through every op in `ops`. Shared by the single-pipeline
/// and sharded runners so the graph under test is identical in both.
Flow<VRec> BuildGraph(Flow<VRec> flow, const std::vector<OpSpec>& ops,
                      const StageOptions& base, bool fuse) {
  size_t i = 0;
  while (i < ops.size()) {
    if (Stateless(ops[i].kind)) {
      if (fuse) {
        size_t j = i;
        while (j < ops.size() && Stateless(ops[j].kind)) ++j;
        flow = ApplyFusedRun(flow, ops, i, j, base);
        i = j;
      } else {
        flow = ApplyStatelessOp(flow, ops[i], base);
        ++i;
      }
    } else {
      flow = ApplyStateful(flow, ops[i], base);
      ++i;
    }
  }
  return flow;
}

/// Executes the operator graph over `input` and returns the canonical
/// output multiset. `fuse` replaces maximal stateless runs with fused
/// single-thread stages. `base` carries the per-edge knobs under test
/// (static capacity, elastic capacity_tuning, latency budget); its
/// `batch` and `name` fields are ignored — the transport policy comes
/// from `policy` (set on the source edge and inherited downstream) and
/// names stay auto-assigned so the shutdown tests' "source#0" lookups
/// keep working.
std::vector<VRec> RunGraph(const std::vector<OpSpec>& ops,
                           const std::vector<VRec>& input, BatchPolicy policy,
                           StageOptions base, bool fuse) {
  Pipeline pipeline;
  std::vector<VRec> out;
  base.name.clear();
  StageOptions source = base;
  source.batch = policy;
  base.batch.reset();  // downstream edges inherit the source policy
  Flow<VRec> flow = BuildGraph(
      Flow<VRec>::FromVector(&pipeline, input, std::move(source)), ops, base,
      fuse);
  flow.CollectInto(&out);
  pipeline.Run();
  return Canon(std::move(out));
}

/// Scale-out execution: scatters the input by the same key hash
/// PartitionedLog producers use (Mix64 of the entity id), runs one
/// independent copy of the operator graph per shard under a
/// ShardedPipeline, and merges the per-shard outputs. Because every
/// operator in the graph keys by `id` (and ids survive every transform),
/// per-key state and fold order are untouched by the scatter — the merged
/// multiset must be bit-identical to the single-pipeline run.
std::vector<VRec> RunGraphSharded(const std::vector<OpSpec>& ops,
                                  const std::vector<VRec>& input,
                                  size_t shards, BatchPolicy policy,
                                  StageOptions base, bool fuse) {
  base.name.clear();
  std::vector<std::vector<VRec>> scattered(shards);
  for (const VRec& r : input) {
    scattered[HashPartition(r.id, shards)].push_back(r);
  }
  ShardedPipeline sp(shards, base);
  std::vector<std::vector<VRec>> outs(shards);
  sp.Build([&](Pipeline* pipeline, size_t shard) {
    StageOptions source = base;
    source.batch = policy;
    StageOptions edge = base;
    edge.batch.reset();  // downstream edges inherit the source policy
    Flow<VRec> flow = BuildGraph(
        Flow<VRec>::FromVector(pipeline, scattered[shard], std::move(source)),
        ops, edge, fuse);
    flow.CollectInto(&outs[shard]);
  });
  sp.Run();
  std::vector<VRec> merged;
  for (std::vector<VRec>& out : outs) {
    merged.insert(merged.end(), out.begin(), out.end());
  }
  return Canon(std::move(merged));
}

/// Positional convenience used by the static-capacity sweeps.
std::vector<VRec> RunGraph(const std::vector<OpSpec>& ops,
                           const std::vector<VRec>& input, BatchPolicy policy,
                           size_t capacity, bool fuse) {
  StageOptions base;
  base.capacity = capacity;
  return RunGraph(ops, input, policy, std::move(base), fuse);
}

void ExpectSameMultiset(const std::vector<VRec>& expected,
                        const std::vector<VRec>& actual, const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(VRecEq(expected[i], actual[i]))
        << label << " diverges at canonical index " << i << ": expected ("
        << expected[i].id << "," << expected[i].t << "," << expected[i].v
        << ") got (" << actual[i].id << "," << actual[i].t << ","
        << actual[i].v << ")";
  }
}

// --------------------------------------------- the differential sweep

struct EquivParams {
  uint64_t seed;
  size_t batch;
  size_t capacity;
};

std::string ParamName(const testing::TestParamInfo<EquivParams>& info) {
  return "seed" + std::to_string(info.param.seed) + "_batch" +
         std::to_string(info.param.batch) + "_cap" +
         std::to_string(info.param.capacity);
}

class BatchEquivTest : public testing::TestWithParam<EquivParams> {};

TEST_P(BatchEquivTest, BatchedAndFusedMatchRecordAtATime) {
  const EquivParams p = GetParam();
  const std::vector<OpSpec> ops = RandomGraph(p.seed);
  const std::vector<VRec> input = MakeVesselRecords(p.seed, 1500);

  const std::vector<VRec> baseline =
      RunGraph(ops, input, BatchPolicy::Single(), p.capacity, false);
  // Batched with a short linger exercises the timed PopBatchFor path;
  // fused with linger < 0 exercises the flush-only-when-full path.
  const std::vector<VRec> batched = RunGraph(
      ops, input, BatchPolicy::Batched(p.batch, 2), p.capacity, false);
  const std::vector<VRec> fused = RunGraph(
      ops, input, BatchPolicy::Batched(p.batch, -1), p.capacity, true);
  // Adaptive with an aggressive cadence so per-edge BatchTuners actually
  // re-target mid-run: live re-targeting must be just as invisible as a
  // static batch boundary.
  BatchPolicy adaptive = BatchPolicy::Adaptive(p.batch, 1, 1024, 2);
  adaptive.tune_every_records = 64;
  const std::vector<VRec> tuned =
      RunGraph(ops, input, adaptive, p.capacity, false);
  // Elastic capacity: every edge starts at the sweep capacity but carries
  // a CapacityTuner allowed to resize it across [1, 4096] at an
  // aggressive cadence. Live channel resizes (including while producers
  // are blocked on a full queue) must be exactly as invisible as batch
  // re-targeting.
  StageOptions elastic;
  elastic.capacity = p.capacity;
  elastic.capacity_tuning = CapacityPolicy::Adaptive(1, 4096);
  const std::vector<VRec> resized =
      RunGraph(ops, input, adaptive, elastic, false);
  // Latency-budget linger on top of a static batched policy: the budget
  // only tightens flush timing, never changes what is delivered.
  StageOptions budgeted;
  budgeted.capacity = p.capacity;
  budgeted.latency_budget_ms = 5;
  const std::vector<VRec> budget_run = RunGraph(
      ops, input, BatchPolicy::Batched(p.batch, 50), budgeted, false);

  ExpectSameMultiset(baseline, batched, "batched");
  ExpectSameMultiset(baseline, fused, "fused+batched");
  ExpectSameMultiset(baseline, tuned, "adaptive");
  ExpectSameMultiset(baseline, resized, "elastic-capacity");
  ExpectSameMultiset(baseline, budget_run, "latency-budget");
}

std::vector<EquivParams> SweepParams() {
  std::vector<EquivParams> params;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, size_t{1024}}) {
      for (size_t capacity : {size_t{1}, size_t{2}, size_t{1024}}) {
        params.push_back({seed, batch, capacity});
      }
    }
  }
  return params;  // 5 seeds x 4 batches x 3 capacities = 60 combinations
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchEquivTest,
                         testing::ValuesIn(SweepParams()), ParamName);

// ------------------------------------------ keyed-terminal fusion arms

enum class KeyedMode { kUnfused, kTwoHop, kFusedKeyed };

/// Threads `flow` through `ops` like BuildGraph, but whenever a maximal
/// stateless run is immediately followed by a kKeyedPar op the pair is
/// built per `mode`: every op its own stage (reference), Fuse()...Emit()
/// then KeyedProcessParallel (the two-hop differential reference — one
/// channel between fused stage and router), or the fused chain
/// terminating directly in KeyedProcessParallel (the prefix executes
/// inside the partition router; zero channels between source and
/// router). Runs not followed by a keyed stage fuse whenever
/// mode != kUnfused, same as BuildGraph.
Flow<VRec> BuildKeyedFuseGraph(Flow<VRec> flow, const std::vector<OpSpec>& ops,
                               const StageOptions& base, KeyedMode mode) {
  size_t i = 0;
  while (i < ops.size()) {
    if (!Stateless(ops[i].kind)) {
      flow = ApplyStateful(flow, ops[i], base);
      ++i;
      continue;
    }
    size_t j = i;
    while (j < ops.size() && Stateless(ops[j].kind)) ++j;
    const bool keyed_next = j < ops.size() && ops[j].kind == OpKind::kKeyedPar;
    if (mode == KeyedMode::kUnfused) {
      for (size_t k = i; k < j; ++k) {
        flow = ApplyStatelessOp(flow, ops[k], base);
      }
      i = j;
    } else if (keyed_next && mode == KeyedMode::kFusedKeyed) {
      FusedChain<VRec, VRec> chain = flow.Fuse();
      for (size_t k = i; k < j; ++k) chain = FuseOp(chain, ops[k]);
      flow = chain.KeyedProcessParallel<VRec, double>(
          KeyFn, KeyedSumFn, static_cast<size_t>(ops[j].a), nullptr,
          StageOptions(base));
      i = j + 1;  // the keyed op was absorbed into the fused terminal
    } else {
      flow = ApplyFusedRun(flow, ops, i, j, base);
      i = j;
    }
  }
  return flow;
}

/// RunGraph analogue for the keyed-terminal arms.
std::vector<VRec> RunKeyedGraph(const std::vector<OpSpec>& ops,
                                const std::vector<VRec>& input,
                                BatchPolicy policy, StageOptions base,
                                KeyedMode mode) {
  Pipeline pipeline;
  std::vector<VRec> out;
  base.name.clear();
  StageOptions source = base;
  source.batch = policy;
  base.batch.reset();  // downstream edges inherit the source policy
  Flow<VRec> flow = BuildKeyedFuseGraph(
      Flow<VRec>::FromVector(&pipeline, input, std::move(source)), ops, base,
      mode);
  flow.CollectInto(&out);
  pipeline.Run();
  return Canon(std::move(out));
}

/// Prefixes every random graph with a guaranteed stateless-run → keyed
/// boundary so all 60 sweep combinations exercise the fused-keyed
/// terminal; the random suffix then adds whatever shape the seed drew
/// (including further keyed boundaries when the dice land that way).
std::vector<OpSpec> KeyedFuseGraph(uint64_t seed) {
  std::vector<OpSpec> ops = {{OpKind::kMap},
                             {OpKind::kFilter, 3},
                             {OpKind::kFlatMap},
                             {OpKind::kKeyedPar, 3}};
  for (const OpSpec& op : RandomGraph(seed)) ops.push_back(op);
  return ops;
}

class KeyedFuseEquivTest : public testing::TestWithParam<EquivParams> {};

TEST_P(KeyedFuseEquivTest, FusedKeyedMatchesTwoHopAndUnfused) {
  const EquivParams p = GetParam();
  const std::vector<OpSpec> ops = KeyedFuseGraph(p.seed);
  const std::vector<VRec> input = MakeVesselRecords(p.seed, 1500);
  StageOptions cap;
  cap.capacity = p.capacity;

  const std::vector<VRec> baseline = RunKeyedGraph(
      ops, input, BatchPolicy::Single(), cap, KeyedMode::kUnfused);
  const std::vector<VRec> two_hop = RunKeyedGraph(
      ops, input, BatchPolicy::Batched(p.batch, 2), cap, KeyedMode::kTwoHop);
  const std::vector<VRec> fused_keyed =
      RunKeyedGraph(ops, input, BatchPolicy::Batched(p.batch, -1), cap,
                    KeyedMode::kFusedKeyed);
  // Adaptive fused-keyed: the router-input tuner, every partition-edge
  // tuner and the output tuner all re-target mid-run; live re-targeting
  // on the scatter edges must be as invisible as a static batch boundary.
  BatchPolicy adaptive = BatchPolicy::Adaptive(p.batch, 1, 1024, 2);
  adaptive.tune_every_records = 64;
  const std::vector<VRec> tuned =
      RunKeyedGraph(ops, input, adaptive, cap, KeyedMode::kFusedKeyed);

  ExpectSameMultiset(baseline, two_hop, "two-hop");
  ExpectSameMultiset(baseline, fused_keyed, "fused-keyed");
  ExpectSameMultiset(baseline, tuned, "fused-keyed-adaptive");
}

INSTANTIATE_TEST_SUITE_P(Sweep, KeyedFuseEquivTest,
                         testing::ValuesIn(SweepParams()), ParamName);

TEST(KeyedFuseOrderTest, FusedPrefixPreservesPerKeyOrder) {
  // Per-key sequence numbers strictly increase through a fused prefix
  // terminating in a 4-way keyed stage; any reordering between the
  // in-router prefix and a worker trips a violation. gtest assertions
  // are not thread-safe off the main thread, so workers count violations
  // in an atomic checked after Run().
  Pipeline pipeline;
  std::vector<VRec> input;
  input.reserve(30000);
  for (int64_t i = 0; i < 30000; ++i) {
    input.push_back(
        VRec{static_cast<uint64_t>(i % 17), i + 1, static_cast<double>(i)});
  }
  std::atomic<uint64_t> violations{0};
  size_t delivered = 0;
  Flow<VRec>::FromVector(
      &pipeline, input, {.capacity = 64, .batch = BatchPolicy::Batched(64, 1)})
      .Fuse()
      .Map<VRec>([](const VRec& r) { return VRec{r.id, r.t, r.v + 1.0}; })
      .Filter([](const VRec&) { return true; })
      .KeyedProcessParallel<VRec, int64_t>(
          KeyFn,
          [&violations](const VRec& r, int64_t& last,
                        const std::function<void(VRec)>& emit) {
            if (r.t <= last) violations.fetch_add(1);
            last = r.t;
            emit(r);
          },
          /*parallelism=*/4, nullptr, {.capacity = 64})
      .Sink([&delivered](const VRec&) { ++delivered; });
  pipeline.Run();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(delivered, 30000u);
}

// A fixed graph touching every operator kind, so coverage does not depend
// on what the seeded generator happens to draw.
TEST(BatchEquivTest, AllOperatorKindsGraph) {
  const std::vector<OpSpec> ops = {
      {OpKind::kMap},          {OpKind::kFilter, 3},
      {OpKind::kFlatMap},      {OpKind::kKeyed},
      {OpKind::kKeyedPar, 4},  {OpKind::kWindow, 5000, 2000},
      {OpKind::kMap},
  };
  const std::vector<VRec> input = MakeVesselRecords(42, 3000);
  const std::vector<VRec> baseline =
      RunGraph(ops, input, BatchPolicy::Single(), 8, false);
  for (size_t batch : {size_t{7}, size_t{64}, size_t{1024}}) {
    ExpectSameMultiset(
        baseline, RunGraph(ops, input, BatchPolicy::Batched(batch, 1), 8, false),
        "batched");
    ExpectSameMultiset(
        baseline, RunGraph(ops, input, BatchPolicy::Batched(batch, -1), 8, true),
        "fused");
    BatchPolicy adaptive = BatchPolicy::Adaptive(batch, 1, 1024, 1);
    adaptive.tune_every_records = 128;
    ExpectSameMultiset(baseline, RunGraph(ops, input, adaptive, 8, false),
                       "adaptive");
    ExpectSameMultiset(baseline, RunGraph(ops, input, adaptive, 8, true),
                       "adaptive+fused");
  }
}

// Fusion alone (no batching) must also be invisible.
TEST(BatchEquivTest, FusedChainMatchesUnfusedUnbatched) {
  const std::vector<OpSpec> ops = {
      {OpKind::kMap}, {OpKind::kFilter, 2}, {OpKind::kFlatMap},
      {OpKind::kMap}};
  const std::vector<VRec> input = MakeVesselRecords(7, 2000);
  ExpectSameMultiset(RunGraph(ops, input, BatchPolicy::Single(), 16, false),
                     RunGraph(ops, input, BatchPolicy::Single(), 16, true),
                     "fused-unbatched");
}

// ----------------------------------------- sharded scale-out equivalence

// The ShardedPipeline facade must be invisible: running the same operator
// graph as N key-disjoint shard pipelines (input scattered by the
// PartitionedLog producer hash) yields exactly the single-pipeline
// multiset, for every shard count and transport policy combination.
TEST(ShardedEquivTest, ShardedGraphsMatchSinglePipeline) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const std::vector<OpSpec> ops = RandomGraph(seed);
    const std::vector<VRec> input = MakeVesselRecords(seed, 1500);
    StageOptions base;
    base.capacity = 8;
    const std::vector<VRec> baseline =
        RunGraph(ops, input, BatchPolicy::Single(), base, false);
    for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
      ExpectSameMultiset(
          baseline,
          RunGraphSharded(ops, input, shards, BatchPolicy::Single(), base,
                          false),
          "sharded-single");
      ExpectSameMultiset(
          baseline,
          RunGraphSharded(ops, input, shards, BatchPolicy::Batched(7, 1),
                          base, false),
          "sharded-batched");
      ExpectSameMultiset(
          baseline,
          RunGraphSharded(ops, input, shards, BatchPolicy::Batched(64, -1),
                          base, true),
          "sharded-fused");
    }
  }
}

// Fixed graph touching every operator kind, sharded — coverage must not
// depend on what the seeded generator draws.
TEST(ShardedEquivTest, AllOperatorKindsGraphSharded) {
  const std::vector<OpSpec> ops = {
      {OpKind::kMap},          {OpKind::kFilter, 3},
      {OpKind::kFlatMap},      {OpKind::kKeyed},
      {OpKind::kKeyedPar, 4},  {OpKind::kWindow, 5000, 2000},
      {OpKind::kMap},
  };
  const std::vector<VRec> input = MakeVesselRecords(42, 3000);
  StageOptions base;
  base.capacity = 8;
  const std::vector<VRec> baseline =
      RunGraph(ops, input, BatchPolicy::Single(), base, false);
  for (size_t shards : {size_t{1}, size_t{4}, size_t{16}}) {
    ExpectSameMultiset(baseline,
                       RunGraphSharded(ops, input, shards,
                                       BatchPolicy::Batched(64, 1), base,
                                       false),
                       "sharded-all-ops");
  }
  // The merged report groups same-named auto-assigned stages across
  // shards; the facade must expose both views.
  ShardedPipeline sp(4);
  std::vector<std::vector<VRec>> outs(4);
  std::vector<std::vector<VRec>> scattered(4);
  for (const VRec& r : input) scattered[HashPartition(r.id, 4)].push_back(r);
  sp.Build([&](Pipeline* pipeline, size_t shard) {
    Flow<VRec>::FromVector(pipeline, scattered[shard], {.capacity = 8})
        .Map<VRec>(MapFn, {.capacity = 8})
        .CollectInto(&outs[shard]);
  });
  sp.Run();
  const std::string json = sp.ReportJson();
  EXPECT_NE(json.find("\"shards\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"aggregate\":["), std::string::npos);
  EXPECT_NE(json.find("\"per_shard\":["), std::string::npos);
  uint64_t mapped = 0;
  for (const StageMetrics& m : sp.AggregateReport()) {
    if (m.stage.rfind("map#", 0) == 0) mapped += m.records_out;
  }
  EXPECT_EQ(mapped, input.size());
}

// ------------------------------- shutdown / cancellation under batching

// Watchdog: fails (instead of hanging the suite) when the pipeline does
// not shut down in time. The worker is detached so a deadlock regression
// is reported, not inherited.
void ExpectCompletesWithin(std::function<void()> body, int timeout_ms) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> finished = done->get_future();
  std::thread([body = std::move(body), done] {
    body();
    done->set_value();
  }).detach();
  ASSERT_EQ(finished.wait_for(std::chrono::milliseconds(timeout_ms)),
            std::future_status::ready)
      << "pipeline hung: batched shutdown deadlock regression";
}

TEST(BatchShutdownTest, SinkCancelsMidBatchWithoutHangingOrLosingSignal) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<int> input(200000);
        std::iota(input.begin(), input.end(), 0);
        size_t seen = 0;
        // Tiny capacity + large batch: the source is mid-PushBatch (and
        // the map stage mid-flush) when the sink walks away.
        auto flow = Flow<int>::FromVector(
                        &pipeline, input,
                        {.capacity = 4, .batch = BatchPolicy::Batched(64, 1)})
                        .Map<int>([](const int& x) { return x + 1; },
                                  {.capacity = 4});
        flow.SinkWhile([&seen](const int&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_GE(seen, 10u);
        // The cancel must have reached the source edge.
        auto report = pipeline.Report();
        bool source_cancelled = false;
        for (const auto& m : report) {
          if (m.stage == "source#0") source_cancelled = m.cancelled;
        }
        EXPECT_TRUE(source_cancelled);
      },
      5000);
}

TEST(BatchShutdownTest, SourceClosesMidLingerFlushesStagedBatch) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        // 3 elements never fill a 1024-batch; end-of-stream must flush
        // the partial batch, not drop it.
        std::vector<int> out;
        Flow<int>::FromVector(
            &pipeline, {1, 2, 3},
            {.capacity = 8, .batch = BatchPolicy::Batched(1024, 10'000)})
            .Map<int>([](const int& x) { return x * 2; }, {.capacity = 8})
            .CollectInto(&out);
        pipeline.Run();
        EXPECT_EQ(out, (std::vector<int>{2, 4, 6}));
      },
      5000);
}

TEST(BatchShutdownTest, LingerFlushesStagedOutputsWhileInputStaysOpen) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        auto in = std::make_shared<Channel<int>>(64);
        std::atomic<int> delivered{0};
        Flow<int> flow(&pipeline, in, BatchPolicy::Batched(1024, 1));
        flow.Map<int>([](const int& x) { return x; }, {.capacity = 64})
            .Sink([&delivered](const int&) { ++delivered; });
        for (int i = 0; i < 3; ++i) in->Push(i);
        // The channel stays OPEN: only the 1 ms linger can flush the
        // 3-element batch staged inside the map operator.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(4);
        while (delivered.load() < 3 &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        EXPECT_EQ(delivered.load(), 3);
        in->Close();
        pipeline.Run();
      },
      6000);
}

TEST(BatchShutdownTest, KeyedProcessParallelTeardownUnderBatching) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<std::pair<uint64_t, int>> input;
        for (int i = 0; i < 200000; ++i) {
          input.push_back({static_cast<uint64_t>(i % 31), i});
        }
        size_t seen = 0;
        Flow<std::pair<uint64_t, int>>::FromVector(
            &pipeline, input,
            {.capacity = 8, .batch = BatchPolicy::Batched(64, 1)})
            .KeyedProcessParallel<int, int>(
                [](const std::pair<uint64_t, int>& e) { return e.first; },
                [](const std::pair<uint64_t, int>& e, int& sum,
                   const std::function<void(int)>& emit) {
                  sum += e.second;
                  emit(sum);
                },
                /*parallelism=*/4, nullptr, {.capacity = 8})
            .SinkWhile([&seen](const int&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_GE(seen, 10u);
      },
      10000);
}

TEST(BatchShutdownTest, FusedStageCancelPropagatesToSource) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<int> input(200000);
        std::iota(input.begin(), input.end(), 0);
        size_t seen = 0;
        Flow<int>::FromVector(
            &pipeline, input,
            {.capacity = 4, .batch = BatchPolicy::Batched(64, 1)})
            .Fuse()
            .Map<int>([](const int& x) { return x + 1; })
            .Filter([](const int& x) { return (x & 1) == 0; })
            .Map<int>([](const int& x) { return x * 2; })
            .Emit({.capacity = 4})
            .SinkWhile([&seen](const int&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_GE(seen, 10u);
      },
      5000);
}

TEST(BatchShutdownTest, GeneratorStopsWhenDownstreamCancelsBatched) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::atomic<long long> generated{0};
        auto flow = Flow<long long>::FromGenerator(
            &pipeline,
            [&generated]() -> std::optional<long long> {
              return ++generated;
            },
            {.capacity = 4, .batch = BatchPolicy::Batched(32, 1)});
        size_t seen = 0;
        flow.SinkWhile([&seen](const long long&) { return ++seen < 100; });
        pipeline.Run();
        // The infinite generator must have been stopped by the cancel.
        EXPECT_GE(seen, 100u);
        EXPECT_LT(generated.load(), 1000000);
      },
      5000);
}

TEST(BatchShutdownTest, AdaptiveCapacityWithFusionTearsDownCleanly) {
  // Elastic channels + fused stages + a sink that walks away mid-stream:
  // a Resize racing a CloseAndDrain (or a producer blocked on a bound
  // that just changed) must not strand any thread. The capacity tuner is
  // forced onto an aggressive cadence so resizes actually happen within
  // the test's lifetime.
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<int> input(200000);
        std::iota(input.begin(), input.end(), 0);
        BatchPolicy adaptive = BatchPolicy::Adaptive(32, 1, 256, 1);
        adaptive.tune_every_records = 128;
        StageOptions elastic{.capacity = 2,
                             .batch = adaptive,
                             .capacity_tuning = CapacityPolicy::Adaptive(2, 64)};
        size_t seen = 0;
        Flow<int>::FromVector(&pipeline, input, std::move(elastic))
            .Fuse()
            .Map<int>([](const int& x) { return x + 1; })
            .Filter([](const int& x) { return (x & 1) == 0; })
            .Emit({.capacity = 2,
                   .capacity_tuning = CapacityPolicy::Adaptive(2, 64)})
            .SinkWhile([&seen](const int&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_GE(seen, 10u);
        // The elastic edges must still publish coherent tuner state.
        for (const auto& m : pipeline.Report()) {
          if (!m.capacity_tuned) continue;
          EXPECT_GE(m.capacity, 2u);
          EXPECT_LE(m.capacity_min, m.capacity_max);
        }
      },
      10000);
}

TEST(KeyedFuseShutdownTest, CancelMidFusedPrefixPropagatesToSource) {
  // The sink walks away while the router is mid-prefix: the cancel must
  // cross the keyed boundary (worker → partition edge → router → source)
  // and stop the infinite generator.
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::atomic<long long> generated{0};
        size_t seen = 0;
        Flow<long long>::FromGenerator(
            &pipeline,
            [&generated]() -> std::optional<long long> { return ++generated; },
            {.capacity = 4, .batch = BatchPolicy::Batched(64, 1)})
            .Fuse()
            .Map<long long>([](const long long& x) { return x + 1; })
            .Filter([](const long long& x) { return (x & 1) == 0; })
            .KeyedProcessParallel<long long, long long>(
                [](const long long& x) {
                  return static_cast<uint64_t>(x % 13);
                },
                [](const long long& x, long long& sum,
                   const std::function<void(long long)>& emit) {
                  sum += x;
                  emit(sum);
                },
                /*parallelism=*/4, nullptr, {.capacity = 4})
            .SinkWhile([&seen](const long long&) { return ++seen < 100; });
        pipeline.Run();
        EXPECT_GE(seen, 100u);
        EXPECT_LT(generated.load(), 1000000);
      },
      10000);
}

TEST(KeyedFuseShutdownTest, PerEdgeTunerTeardownUnderCancel) {
  // Adaptive batching on every edge of the fused-keyed stage (router
  // input, each partition edge, output) plus elastic partition
  // capacities, then a sink that walks away almost immediately: tuner
  // teardown must not strand the router or any worker, and the composite
  // stage row must still surface coherent per-edge state.
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<VRec> input;
        input.reserve(200000);
        for (int64_t i = 0; i < 200000; ++i) {
          input.push_back(VRec{static_cast<uint64_t>(i % 31), i, 1.0});
        }
        BatchPolicy adaptive = BatchPolicy::Adaptive(32, 1, 256, 1);
        adaptive.tune_every_records = 64;
        size_t seen = 0;
        Flow<VRec>::FromVector(&pipeline, input,
                               {.capacity = 4, .batch = adaptive})
            .Fuse()
            .Map<VRec>(MapFn)
            .KeyedProcessParallel<VRec, double>(
                KeyFn, KeyedSumFn, /*parallelism=*/4, nullptr,
                {.capacity = 4,
                 .capacity_tuning = CapacityPolicy::Adaptive(2, 64)})
            .SinkWhile([&seen](const VRec&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_GE(seen, 10u);
        bool found = false;
        for (const StageMetrics& m : pipeline.Report()) {
          // Skip the stage's auxiliary rows (e.g. ".router_in").
          if (m.stage.rfind("fused_keyed#", 0) != 0 ||
              m.stage.find('.') != std::string::npos) {
            continue;
          }
          found = true;
          ASSERT_EQ(m.worker_edges.size(), 4u);
          for (const StageMetrics& e : m.worker_edges) {
            EXPECT_TRUE(e.tuned) << e.stage;
          }
        }
        EXPECT_TRUE(found);
      },
      10000);
}

}  // namespace
}  // namespace tcmf::stream
