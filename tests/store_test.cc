#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/rng.h"
#include "geom/stcell.h"
#include "rdf/vocab.h"
#include "store/columnar.h"
#include "store/kgstore.h"

namespace tcmf::store {
namespace {

// -------------------------------------------------------------- Columnar

TEST(VarintTest, RoundTripValues) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 40,
                     ~0ull}) {
    std::string buf;
    AppendVarint(&buf, v);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(ReadVarint(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncationDetected) {
  std::string buf;
  AppendVarint(&buf, 1ull << 40);
  buf.pop_back();
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(ReadVarint(buf, &pos, &out));
}

TEST(ColumnTest, RoundTripRandom) {
  Rng rng(1);
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<uint64_t>(rng.UniformInt(0, 1 << 30)));
  }
  auto decoded = DecodeColumn(EncodeColumn(values));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), values);
}

TEST(ColumnTest, SortedColumnCompressesWell) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 10000; ++i) values.push_back(i * 3);
  std::string encoded = EncodeColumn(values);
  // Delta+varint: ~1 byte per element vs 8 raw.
  EXPECT_LT(encoded.size(), values.size() * 2);
}

TEST(ColumnTest, EmptyColumn) {
  auto decoded = DecodeColumn(EncodeColumn({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(PartitionFileTest, RoundTrip) {
  std::string path = testing::TempDir() + "/tcmf_part.col";
  std::vector<rdf::EncodedTriple> triples;
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    triples.push_back({static_cast<uint64_t>(rng.UniformInt(1, 100)),
                       static_cast<uint64_t>(rng.UniformInt(1, 10)),
                       static_cast<uint64_t>(rng.UniformInt(1, 1000))});
  }
  ASSERT_TRUE(WriteTriplePartition(path, triples).ok());
  auto loaded = ReadTriplePartition(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), triples);
  std::remove(path.c_str());
}

TEST(PartitionFileTest, BadMagicRejected) {
  std::string path = testing::TempDir() + "/tcmf_bad.col";
  {
    std::ofstream out(path);
    out << "NOT A PARTITION FILE";
  }
  EXPECT_FALSE(ReadTriplePartition(path).ok());
  std::remove(path.c_str());
}

TEST(PartitionFileTest, MissingFileRejected) {
  EXPECT_FALSE(ReadTriplePartition("/no/such/part.col").ok());
}

// --------------------------------------------------------------- KgStore

class KgStoreTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 400;

  KgStoreTest()
      : encoder_({0.0, 35.0, 10.0, 44.0}, 8, 0, kMillisPerHour),
        store_(encoder_, 4) {
    Rng rng(3);
    for (size_t i = 0; i < kNodes; ++i) {
      rdf::Term node = rdf::Iri("http://x/node/" + std::to_string(i));
      double lon = rng.Uniform(0.0, 10.0);
      double lat = rng.Uniform(35.0, 44.0);
      TimeMs t = static_cast<TimeMs>(
          rng.Uniform(0.0, 24.0 * kMillisPerHour));
      store_.AddPositionNode(node, lon, lat, t);
      store_.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
                  rdf::DoubleLiteral(rng.Uniform(0.0, 12.0))});
      store_.Add({node, rdf::Iri(rdf::vocab::kHasHeading),
                  rdf::DoubleLiteral(rng.Uniform(0.0, 360.0))});
      lons_.push_back(lon);
      lats_.push_back(lat);
      times_.push_back(t);
    }
    store_.Compile();

    query_.predicate_ids = {
        store_.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
        store_.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasHeading)),
        store_.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp)),
    };
    query_.has_st_constraint = true;
    query_.st_box.bounds = {2.0, 38.0, 6.0, 42.0};
    query_.st_box.t_begin = 4 * kMillisPerHour;
    query_.st_box.t_end = 16 * kMillisPerHour;
  }

  size_t ExpectedMatches() const {
    size_t n = 0;
    for (size_t i = 0; i < kNodes; ++i) {
      if (query_.st_box.bounds.Contains(lons_[i], lats_[i]) &&
          times_[i] >= query_.st_box.t_begin &&
          times_[i] <= query_.st_box.t_end) {
        ++n;
      }
    }
    return n;
  }

  geom::StCellEncoder encoder_;
  KnowledgeStore store_;
  StarQuery query_;
  std::vector<double> lons_, lats_;
  std::vector<TimeMs> times_;
};

TEST_F(KgStoreTest, TripleCountTracksAdds) {
  // 3 position triples + 2 property triples per node.
  EXPECT_EQ(store_.size(), kNodes * 5);
}

TEST_F(KgStoreTest, AllPlansAgreeOnStarQuery) {
  StarQueryMetrics m1, m2, m3;
  auto r1 = store_.RunStar(query_, StarPlan::kTriplesTableScan, &m1);
  auto r2 = store_.RunStar(query_, StarPlan::kVerticalPartition, &m2);
  auto r3 = store_.RunStar(query_, StarPlan::kVerticalPartitionPushdown, &m3);

  auto subjects = [](const std::vector<StarRow>& rows) {
    std::set<uint64_t> out;
    for (const auto& r : rows) out.insert(r.subject);
    return out;
  };
  EXPECT_EQ(subjects(r1), subjects(r2));
  EXPECT_EQ(subjects(r2), subjects(r3));
  EXPECT_EQ(r1.size(), ExpectedMatches());
}

TEST_F(KgStoreTest, PushdownPrunesExactFilterWork) {
  StarQueryMetrics late, pushdown;
  store_.RunStar(query_, StarPlan::kVerticalPartition, &late);
  store_.RunStar(query_, StarPlan::kVerticalPartitionPushdown, &pushdown);
  // The st-cell integer pre-filter must cut exact (WKT-parsing) filter
  // evaluations by a large factor.
  EXPECT_LT(pushdown.st_filter_evaluations,
            late.st_filter_evaluations / 2);
}

TEST_F(KgStoreTest, UnconstrainedQueryReturnsAllCompleteSubjects) {
  StarQuery q = query_;
  q.has_st_constraint = false;
  auto rows = store_.RunStar(q, StarPlan::kVerticalPartition, nullptr);
  EXPECT_EQ(rows.size(), kNodes);
}

TEST_F(KgStoreTest, MissingPredicateYieldsNoRows) {
  StarQuery q = query_;
  q.predicate_ids.push_back(999999);  // never interned
  auto rows = store_.RunStar(q, StarPlan::kVerticalPartition, nullptr);
  EXPECT_TRUE(rows.empty());
}

TEST_F(KgStoreTest, EmptyQueryYieldsNoRows) {
  StarQuery q;
  auto rows = store_.RunStar(q, StarPlan::kTriplesTableScan, nullptr);
  EXPECT_TRUE(rows.empty());
}

TEST_F(KgStoreTest, RowsCarryObjectBindings) {
  auto rows = store_.RunStar(query_, StarPlan::kVerticalPartition, nullptr);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    ASSERT_EQ(row.objects.size(), 3u);
    for (uint64_t o : row.objects) EXPECT_NE(o, 0u);
    // Speed object decodes to a double literal.
    auto term = store_.dictionary().Decode(row.objects[0]);
    ASSERT_TRUE(term.has_value());
    EXPECT_EQ(term->kind, rdf::Term::Kind::kLiteral);
  }
}

TEST_F(KgStoreTest, LookupPosition) {
  uint64_t sid =
      store_.dictionary().Lookup(rdf::Iri("http://x/node/0"));
  double lon, lat;
  TimeMs t;
  ASSERT_TRUE(store_.LookupPosition(sid, &lon, &lat, &t));
  EXPECT_DOUBLE_EQ(lon, lons_[0]);
  EXPECT_EQ(t, times_[0]);
  EXPECT_FALSE(store_.LookupPosition(999999, &lon, &lat, &t));
}

TEST_F(KgStoreTest, SaveLoadTriplesRoundTrip) {
  std::string dir = testing::TempDir() + "/tcmf_store_test";
  ASSERT_TRUE(store_.SaveTriples(dir).ok());
  KnowledgeStore loaded(encoder_, store_.partitions());
  auto n = loaded.LoadTriples(dir);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), store_.size());
  EXPECT_EQ(loaded.size(), store_.size());
  std::filesystem::remove_all(dir);
}

TEST_F(KgStoreTest, PlanNames) {
  EXPECT_STREQ(StarPlanName(StarPlan::kTriplesTableScan),
               "triples-table-scan");
  EXPECT_STRNE(StarPlanName(StarPlan::kVerticalPartitionPushdown),
               "unknown");
}


TEST_F(KgStoreTest, PropertyTablePlansAgreeWithOthers) {
  store_.BuildPropertyTable(query_.predicate_ids);
  auto subjects = [](const std::vector<StarRow>& rows) {
    std::set<uint64_t> out;
    for (const auto& r : rows) out.insert(r.subject);
    return out;
  };
  auto base = store_.RunStar(query_, StarPlan::kVerticalPartition, nullptr);
  auto pt = store_.RunStar(query_, StarPlan::kPropertyTable, nullptr);
  auto ptp =
      store_.RunStar(query_, StarPlan::kPropertyTablePushdown, nullptr);
  EXPECT_EQ(subjects(base), subjects(pt));
  EXPECT_EQ(subjects(pt), subjects(ptp));
}

TEST_F(KgStoreTest, PropertyTablePushdownPrunesExactFilters) {
  store_.BuildPropertyTable(query_.predicate_ids);
  StarQueryMetrics plain, pushdown;
  store_.RunStar(query_, StarPlan::kPropertyTable, &plain);
  store_.RunStar(query_, StarPlan::kPropertyTablePushdown, &pushdown);
  EXPECT_LT(pushdown.st_filter_evaluations, plain.st_filter_evaluations / 2);
}

TEST_F(KgStoreTest, PropertyTableServesSubsetQueries) {
  // A table over three predicates serves a two-predicate star.
  store_.BuildPropertyTable(query_.predicate_ids);
  StarQuery narrow = query_;
  narrow.predicate_ids.pop_back();
  auto base = store_.RunStar(narrow, StarPlan::kVerticalPartition, nullptr);
  auto pt = store_.RunStar(narrow, StarPlan::kPropertyTable, nullptr);
  EXPECT_EQ(base.size(), pt.size());
}

TEST_F(KgStoreTest, MissingPropertyTableYieldsNoRows) {
  // No table built: property-table plans return empty (planner would fall
  // back to another layout in a full system).
  auto rows = store_.RunStar(query_, StarPlan::kPropertyTable, nullptr);
  EXPECT_TRUE(rows.empty());
}

// Sweep the selectivity of the st-box: plans must agree everywhere.
class PlanAgreementSweep : public ::testing::TestWithParam<double> {};

TEST_P(PlanAgreementSweep, AgreeAtAllSelectivities) {
  double frac = GetParam();
  geom::StCellEncoder encoder({0.0, 35.0, 10.0, 44.0}, 8, 0, kMillisPerHour);
  KnowledgeStore store(encoder, 3);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    rdf::Term node = rdf::Iri("http://x/n/" + std::to_string(i));
    store.AddPositionNode(node, rng.Uniform(0, 10), rng.Uniform(35, 44),
                          static_cast<TimeMs>(rng.Uniform(0, 86400000.0)));
    store.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
               rdf::DoubleLiteral(1.0)});
  }
  store.Compile();
  StarQuery q;
  q.predicate_ids = {
      store.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed))};
  q.has_st_constraint = true;
  q.st_box.bounds = {0.0, 35.0, 0.0 + 10 * frac, 35.0 + 9 * frac};
  q.st_box.t_begin = 0;
  q.st_box.t_end = static_cast<TimeMs>(86400000.0 * frac);
  auto r1 = store.RunStar(q, StarPlan::kTriplesTableScan, nullptr);
  auto r2 = store.RunStar(q, StarPlan::kVerticalPartition, nullptr);
  auto r3 = store.RunStar(q, StarPlan::kVerticalPartitionPushdown, nullptr);
  EXPECT_EQ(r1.size(), r2.size());
  EXPECT_EQ(r2.size(), r3.size());
}

INSTANTIATE_TEST_SUITE_P(Selectivities, PlanAgreementSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace tcmf::store
