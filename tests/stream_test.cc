#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "stream/channel.h"
#include "stream/pipeline.h"
#include "stream/record.h"
#include "stream/window.h"

namespace tcmf::stream {
namespace {

// ---------------------------------------------------------------- Record

TEST(RecordTest, SetAndGetTyped) {
  Record r;
  r.Set("i", static_cast<int64_t>(5));
  r.Set("d", 2.5);
  r.Set("s", std::string("x"));
  r.Set("b", true);
  EXPECT_EQ(r.GetInt("i").value(), 5);
  EXPECT_DOUBLE_EQ(r.GetDouble("d").value(), 2.5);
  EXPECT_EQ(r.GetString("s").value(), "x");
  EXPECT_TRUE(r.GetBool("b").value());
}

TEST(RecordTest, TypeMismatchReturnsNullopt) {
  Record r;
  r.Set("i", static_cast<int64_t>(5));
  EXPECT_FALSE(r.GetDouble("i").has_value());
  EXPECT_FALSE(r.GetString("i").has_value());
}

TEST(RecordTest, GetNumericWidensInt) {
  Record r;
  r.Set("i", static_cast<int64_t>(5));
  r.Set("d", 2.5);
  EXPECT_DOUBLE_EQ(r.GetNumeric("i").value(), 5.0);
  EXPECT_DOUBLE_EQ(r.GetNumeric("d").value(), 2.5);
}

TEST(RecordTest, MissingField) {
  Record r;
  EXPECT_FALSE(r.Has("nope"));
  EXPECT_FALSE(r.GetInt("nope").has_value());
}

TEST(RecordTest, OverwriteKeepsSingleField) {
  Record r;
  r.Set("x", static_cast<int64_t>(1));
  r.Set("x", static_cast<int64_t>(2));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.GetInt("x").value(), 2);
}

TEST(RecordTest, PositionRoundTrip) {
  Position p;
  p.entity_id = 123456;
  p.t = 987654321;
  p.lon = 2.5;
  p.lat = 41.3;
  p.alt_m = 9500;
  p.speed_mps = 230;
  p.heading_deg = 271.5;
  p.vrate_mps = -8.5;
  Position back = RecordToPosition(PositionToRecord(p));
  EXPECT_EQ(back.entity_id, p.entity_id);
  EXPECT_EQ(back.t, p.t);
  EXPECT_DOUBLE_EQ(back.lon, p.lon);
  EXPECT_DOUBLE_EQ(back.heading_deg, p.heading_deg);
  EXPECT_DOUBLE_EQ(back.vrate_mps, p.vrate_mps);
}

TEST(RecordTest, ValueToStringForms) {
  EXPECT_EQ(ValueToString(Value{std::monostate{}}), "");
  EXPECT_EQ(ValueToString(Value{static_cast<int64_t>(7)}), "7");
  EXPECT_EQ(ValueToString(Value{true}), "true");
  EXPECT_EQ(ValueToString(Value{std::string("s")}), "s");
}

TEST(RecordTest, EqualityComparesFieldsAndEventTime) {
  Record a;
  a.set_event_time(10);
  a.Set("id", static_cast<int64_t>(1));
  a.Set("name", std::string("alpha"));
  Record b;
  b.set_event_time(10);
  b.Set("id", static_cast<int64_t>(1));
  b.Set("name", std::string("alpha"));
  EXPECT_EQ(a, b);

  Record later = a;
  later.set_event_time(11);
  EXPECT_NE(a, later);

  Record renamed = a;
  renamed.Set("name", std::string("beta"));
  EXPECT_NE(a, renamed);

  Record extra = a;
  extra.Set("flag", true);
  EXPECT_NE(a, extra);
}

TEST(RecordTest, ValueEqualsIsRepresentational) {
  // Bitwise comparison for doubles: NaN == NaN, but 0.0 != -0.0.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(ValueEquals(Value{nan}, Value{nan}));
  EXPECT_FALSE(ValueEquals(Value{0.0}, Value{-0.0}));
  // Empty string and null are distinct alternatives.
  EXPECT_FALSE(ValueEquals(Value{std::string()}, Value{std::monostate{}}));
  EXPECT_TRUE(ValueEquals(Value{std::string()}, Value{std::string()}));
  // Cross-type never compares equal, even when numerically identical.
  EXPECT_FALSE(ValueEquals(Value{static_cast<int64_t>(1)}, Value{1.0}));
}

// --------------------------------------------------------------- Channel

TEST(ChannelTest, FifoOrder) {
  Channel<int> ch(10);
  ch.Push(1);
  ch.Push(2);
  ch.Push(3);
  EXPECT_EQ(ch.Pop().value(), 1);
  EXPECT_EQ(ch.Pop().value(), 2);
  EXPECT_EQ(ch.Pop().value(), 3);
}

TEST(ChannelTest, CloseDrainsThenNullopt) {
  Channel<int> ch(10);
  ch.Push(1);
  ch.Close();
  EXPECT_EQ(ch.Pop().value(), 1);
  EXPECT_FALSE(ch.Pop().has_value());
}

TEST(ChannelTest, PushAfterCloseFails) {
  Channel<int> ch(10);
  ch.Close();
  EXPECT_FALSE(ch.Push(1));
  EXPECT_FALSE(ch.TryPush(1));
}

TEST(ChannelTest, TryPushRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.TryPush(1));
  EXPECT_TRUE(ch.TryPush(2));
  EXPECT_FALSE(ch.TryPush(3));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(ChannelTest, TryPopEmpty) {
  Channel<int> ch(2);
  EXPECT_FALSE(ch.TryPop().has_value());
}

TEST(ChannelTest, BlockingBackpressure) {
  Channel<int> ch(1);
  ch.Push(0);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ch.Push(1);  // blocks until consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(ch.Pop().value(), 0);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(ch.Pop().value(), 1);
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel<int> ch(16);
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&ch] {
      for (int i = 0; i < kPerProducer; ++i) ch.Push(1);
    });
  }
  std::thread closer([&] {
    for (std::thread& t : producers) t.join();
    ch.Close();
  });
  long long sum = 0;
  while (auto v = ch.Pop()) sum += *v;
  closer.join();
  EXPECT_EQ(sum, 4 * kPerProducer);
}

// ------------------------------------------------ Channel: cancel + poll

TEST(ChannelTest, TryPopTriStateDistinguishesEmptyFromClosed) {
  Channel<int> ch(4);
  int out = 0;
  // Open and empty: try again later.
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kEmpty);
  EXPECT_FALSE(ch.closed_and_empty());
  // Item available.
  ch.Push(7);
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kItem);
  EXPECT_EQ(out, 7);
  // Closed but not yet drained: still an item, then terminal.
  ch.Push(8);
  ch.Close();
  EXPECT_FALSE(ch.closed_and_empty());
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kItem);
  EXPECT_EQ(out, 8);
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kClosed);
  EXPECT_TRUE(ch.closed_and_empty());
}

TEST(ChannelTest, CloseAndDrainDiscardsQueuedElements) {
  Channel<int> ch(8);
  ch.Push(1);
  ch.Push(2);
  ch.Push(3);
  ch.CloseAndDrain();
  EXPECT_TRUE(ch.cancelled());
  EXPECT_TRUE(ch.closed_and_empty());
  EXPECT_FALSE(ch.Pop().has_value());
  EXPECT_FALSE(ch.Push(4));
  StageMetrics m = ch.MetricsSnapshot();
  EXPECT_EQ(m.dropped_on_cancel, 3u);
  EXPECT_EQ(m.push_rejected, 1u);
  EXPECT_TRUE(m.cancelled);
}

TEST(ChannelTest, CloseAndDrainUnblocksBlockedProducer) {
  Channel<int> ch(1);
  ch.Push(0);
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result = ch.Push(1);  // blocks: channel full
    push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(push_returned.load());
  ch.CloseAndDrain();  // consumer walks away
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(push_result.load());  // the element was rejected
}

TEST(ChannelTest, MetricsCountRecordsAndHighWatermark) {
  Channel<int> ch(16);
  for (int i = 0; i < 5; ++i) ch.Push(i);
  ch.Pop();
  ch.Pop();
  StageMetrics m = ch.MetricsSnapshot();
  EXPECT_EQ(m.records_in, 5u);
  EXPECT_EQ(m.records_out, 2u);
  EXPECT_EQ(m.queue_high_watermark, 5u);
  EXPECT_EQ(m.producer_blocked_ns, 0u);  // never hit capacity
}

TEST(ChannelTest, MetricsRecordBlockedTimeOnBothSides) {
  Channel<int> ch(1);
  // Producer blocks on a full queue until the consumer drains it.
  ch.Push(0);
  std::thread producer([&] { ch.Push(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ch.Pop();
  producer.join();
  EXPECT_GT(ch.MetricsSnapshot().producer_blocked_ns, 0u);
  // Consumer blocks on an empty queue until a producer arrives.
  ch.Pop();  // drain
  std::thread consumer([&] { ch.Pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ch.Push(2);
  consumer.join();
  EXPECT_GT(ch.MetricsSnapshot().consumer_blocked_ns, 0u);
}

// ------------------------------------------- Channel: batched transport

TEST(ChannelTest, PushBatchPopBatchFifoOrder) {
  Channel<int> ch(16);
  EXPECT_EQ(ch.PushBatch({1, 2, 3, 4, 5}), 5u);
  std::vector<int> out;
  EXPECT_EQ(ch.PopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ch.PopBatch(&out, 10), 2u);  // appends
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ChannelTest, PushBatchLargerThanCapacityChunksThroughBackpressure) {
  Channel<int> ch(4);
  std::vector<int> batch(32);
  std::iota(batch.begin(), batch.end(), 0);
  std::thread producer([&] { EXPECT_EQ(ch.PushBatch(std::move(batch)), 32u); });
  std::vector<int> got;
  while (got.size() < 32) ch.PopBatch(&got, 8);
  producer.join();
  std::vector<int> expected(32);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(got, expected);
}

TEST(ChannelTest, PushBatchPartialAcceptOnClose) {
  Channel<int> ch(2);
  std::atomic<size_t> accepted{0};
  std::thread producer([&] {
    // 2 fit, then the producer blocks; CloseAndDrain rejects the rest.
    accepted = ch.PushBatch({1, 2, 3, 4, 5});
  });
  while (ch.size() < 2) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));
  ch.CloseAndDrain();
  producer.join();
  EXPECT_EQ(accepted.load(), 2u);
  StageMetrics m = ch.MetricsSnapshot();
  EXPECT_EQ(m.push_rejected, 3u);       // the unaccepted tail
  EXPECT_EQ(m.dropped_on_cancel, 2u);   // the accepted-then-discarded head
}

TEST(ChannelTest, PopBatchZeroMeansEndOfStream) {
  Channel<int> ch(4);
  ch.Push(1);
  ch.Close();
  std::vector<int> out;
  EXPECT_EQ(ch.PopBatch(&out, 4), 1u);
  EXPECT_EQ(ch.PopBatch(&out, 4), 0u);
}

TEST(ChannelTest, PopBatchForTimesOutWhileOpen) {
  Channel<int> ch(4);
  std::vector<int> out;
  size_t n = 99;
  EXPECT_EQ(ch.PopBatchFor(&out, 4, std::chrono::milliseconds(5), &n),
            PollStatus::kEmpty);
  EXPECT_EQ(n, 0u);
  ch.Push(1);
  EXPECT_EQ(ch.PopBatchFor(&out, 4, std::chrono::milliseconds(5), &n),
            PollStatus::kItem);
  EXPECT_EQ(n, 1u);
  ch.Close();
  EXPECT_EQ(ch.PopBatchFor(&out, 4, std::chrono::milliseconds(5), &n),
            PollStatus::kClosed);
}

TEST(ChannelTest, BatchMetricsCountBatchesAndMeanSize) {
  Channel<int> ch(64);
  ch.PushBatch({1, 2, 3, 4, 5, 6});  // 1 batch of 6
  ch.Push(7);                        // 1 batch of 1
  std::vector<int> out;
  ch.PopBatch(&out, 64);             // 1 batch of 7
  StageMetrics m = ch.MetricsSnapshot();
  EXPECT_EQ(m.records_in, 7u);
  EXPECT_EQ(m.batches_in, 2u);
  EXPECT_EQ(m.records_out, 7u);
  EXPECT_EQ(m.batches_out, 1u);
  EXPECT_DOUBLE_EQ(m.MeanBatchIn(), 3.5);
  EXPECT_DOUBLE_EQ(m.MeanBatchOut(), 7.0);
}

// Regression for the notify_one wakeup bug: a batch transfer releases k
// resources at once; waking only ONE waiter strands the other k-1
// forever (no further notifies arrive once producers/consumers are
// drained). 4 producers blocked in Push freed by one PopBatch, and 4
// consumers blocked in Pop fed by one PushBatch — both directions
// previously hung with notify_one.
TEST(ChannelTest, BatchWakeupsFourProducersFourConsumersNoStrand) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> finished = done->get_future();
  std::thread([done] {
    {
      // Direction 1: one PopBatch must wake every blocked producer.
      Channel<int> ch(4);
      for (int i = 0; i < 4; ++i) ch.Push(i);  // fill
      std::vector<std::thread> producers;
      for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&ch, p] { ch.Push(100 + p); });
      }
      // Wait until all four producers are blocked on the full queue.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::vector<int> out;
      EXPECT_EQ(ch.PopBatch(&out, 4), 4u);  // frees 4 slots in one notify
      for (std::thread& t : producers) t.join();
      EXPECT_EQ(ch.size(), 4u);
    }
    {
      // Direction 2: one PushBatch must wake every blocked consumer.
      Channel<int> ch(8);
      std::vector<std::thread> consumers;
      std::atomic<int> popped{0};
      for (int c = 0; c < 4; ++c) {
        consumers.emplace_back([&ch, &popped] {
          if (ch.Pop().has_value()) ++popped;
        });
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ch.PushBatch({1, 2, 3, 4});  // feeds 4 consumers in one notify
      for (std::thread& t : consumers) t.join();
      EXPECT_EQ(popped.load(), 4);
    }
    done->set_value();
  }).detach();
  ASSERT_EQ(finished.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "batch wakeup stranded a waiter: notify_one regression";
}

// ---------------------- Channel: TryPush/TryPop vs consumer cancellation

TEST(ChannelTest, PollingConsumerObservesEmptyThenClosedAcrossCancel) {
  Channel<int> ch(4);
  int out = 0;
  // Polling consumer sees kEmpty while the channel is open...
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kEmpty);
  ch.Push(1);
  ch.Push(2);
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kItem);
  EXPECT_EQ(out, 1);
  // ...then another consumer cancels: the queued element is discarded
  // and the poller transitions kEmpty -> kClosed with no intervening
  // kItem (cancel means "never again", not "drain first").
  ch.CloseAndDrain();
  EXPECT_EQ(ch.TryPop(&out), PollStatus::kClosed);
  EXPECT_TRUE(ch.closed_and_empty());
  // The optional-based TryPop agrees.
  EXPECT_FALSE(ch.TryPop().has_value());
}

TEST(ChannelTest, TryPushAfterCloseAndDrainCountsRejections) {
  Channel<int> ch(4);
  ch.Push(1);
  ch.CloseAndDrain();
  EXPECT_FALSE(ch.TryPush(2));
  EXPECT_FALSE(ch.TryPush(3));
  EXPECT_FALSE(ch.Push(4));
  EXPECT_EQ(ch.PushBatch({5, 6}), 0u);
  StageMetrics m = ch.MetricsSnapshot();
  EXPECT_EQ(m.dropped_on_cancel, 1u);  // the queued element
  EXPECT_EQ(m.push_rejected, 5u);      // 2 TryPush + 1 Push + 2 batch
  EXPECT_EQ(m.records_in, 1u);         // rejected pushes are not "in"
  EXPECT_TRUE(m.cancelled);
}

TEST(ChannelTest, TryPushFullIsNotARejection) {
  Channel<int> ch(1);
  EXPECT_TRUE(ch.TryPush(1));
  EXPECT_FALSE(ch.TryPush(2));  // full, but channel healthy
  StageMetrics m = ch.MetricsSnapshot();
  EXPECT_EQ(m.push_rejected, 0u);  // only closed/cancelled pushes count
}

// -------------------------------------------------------------- Pipeline

TEST(PipelineTest, SourceMapSink) {
  Pipeline pipeline;
  std::vector<int> input(100);
  std::iota(input.begin(), input.end(), 0);
  std::vector<int> output;
  Flow<int>::FromVector(&pipeline, input)
      .Map<int>([](const int& x) { return x * 2; })
      .CollectInto(&output);
  pipeline.Run();
  ASSERT_EQ(output.size(), 100u);
  EXPECT_EQ(output[10], 20);
  EXPECT_EQ(output[99], 198);
}

TEST(PipelineTest, FilterDropsElements) {
  Pipeline pipeline;
  std::vector<int> output;
  Flow<int>::FromVector(&pipeline, {1, 2, 3, 4, 5, 6})
      .Filter([](const int& x) { return x % 2 == 0; })
      .CollectInto(&output);
  pipeline.Run();
  EXPECT_EQ(output, std::vector<int>({2, 4, 6}));
}

TEST(PipelineTest, FlatMapExpands) {
  Pipeline pipeline;
  std::vector<int> output;
  Flow<int>::FromVector(&pipeline, {1, 3})
      .FlatMap<int>([](const int& x) {
        return std::vector<int>{x, x + 1};
      })
      .CollectInto(&output);
  pipeline.Run();
  EXPECT_EQ(output, std::vector<int>({1, 2, 3, 4}));
}

TEST(PipelineTest, GeneratorSource) {
  Pipeline pipeline;
  int counter = 0;
  std::vector<int> output;
  Flow<int>::FromGenerator(&pipeline,
                           [&counter]() -> std::optional<int> {
                             if (counter >= 5) return std::nullopt;
                             return counter++;
                           })
      .CollectInto(&output);
  pipeline.Run();
  EXPECT_EQ(output.size(), 5u);
}

TEST(PipelineTest, KeyedProcessMaintainsPerKeyState) {
  Pipeline pipeline;
  // Running sum per key; emit the sum at every element.
  std::vector<std::pair<uint64_t, int>> input = {
      {1, 10}, {2, 100}, {1, 5}, {2, 1}, {1, 1}};
  std::vector<int> output;
  Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input)
      .KeyedProcess<int, int>(
          [](const std::pair<uint64_t, int>& e) { return e.first; },
          [](const std::pair<uint64_t, int>& e, int& sum,
             const std::function<void(int)>& emit) {
            sum += e.second;
            emit(sum);
          })
      .CollectInto(&output);
  pipeline.Run();
  EXPECT_EQ(output, std::vector<int>({10, 100, 15, 101, 16}));
}

TEST(PipelineTest, KeyedProcessFlushRunsPerKey) {
  Pipeline pipeline;
  std::vector<std::pair<uint64_t, int>> input = {{1, 1}, {2, 2}, {1, 3}};
  std::vector<int> output;
  Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input)
      .KeyedProcess<int, int>(
          [](const std::pair<uint64_t, int>& e) { return e.first; },
          [](const std::pair<uint64_t, int>& e, int& sum,
             const std::function<void(int)>&) { sum += e.second; },
          [](uint64_t, int& sum, const std::function<void(int)>& emit) {
            emit(sum);
          })
      .CollectInto(&output);
  pipeline.Run();
  std::sort(output.begin(), output.end());
  EXPECT_EQ(output, std::vector<int>({2, 4}));
}

TEST(PipelineTest, MultiStageChain) {
  Pipeline pipeline;
  std::vector<int> input(1000);
  std::iota(input.begin(), input.end(), 0);
  std::vector<int> output;
  Flow<int>::FromVector(&pipeline, input)
      .Map<int>([](const int& x) { return x + 1; })
      .Filter([](const int& x) { return x % 3 == 0; })
      .Map<int>([](const int& x) { return x / 3; })
      .CollectInto(&output);
  pipeline.Run();
  ASSERT_EQ(output.size(), 333u);
  EXPECT_EQ(output[0], 1);
  EXPECT_EQ(output[332], 333);
}


TEST(PipelineTest, ParallelKeyedProcessMatchesSequential) {
  // Same per-key sums whether run on 1 or 4 workers.
  std::vector<std::pair<uint64_t, int>> input;
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    input.push_back({static_cast<uint64_t>(rng.UniformInt(0, 15)),
                     static_cast<int>(rng.UniformInt(1, 9))});
  }
  auto run = [&](size_t parallelism) {
    Pipeline pipeline;
    std::vector<std::pair<uint64_t, int>> output;
    Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input)
        .KeyedProcessParallel<std::pair<uint64_t, int>, int>(
            [](const std::pair<uint64_t, int>& e) { return e.first; },
            [](const std::pair<uint64_t, int>& e, int& sum,
               const std::function<void(std::pair<uint64_t, int>)>&) {
              sum += e.second;
            },
            parallelism,
            [](uint64_t key, int& sum,
               const std::function<void(std::pair<uint64_t, int>)>& emit) {
              emit({key, sum});
            })
        .CollectInto(&output);
    pipeline.Run();
    std::sort(output.begin(), output.end());
    return output;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(PipelineTest, ParallelKeyedPreservesPerKeyOrder) {
  // Each key's elements must be processed in stream order even across
  // 4 workers: emit running counts and check monotonicity per key.
  std::vector<std::pair<uint64_t, int>> input;
  for (int i = 0; i < 500; ++i) {
    input.push_back({static_cast<uint64_t>(i % 7), i});
  }
  Pipeline pipeline;
  std::vector<std::pair<uint64_t, int>> output;
  Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input)
      .KeyedProcessParallel<std::pair<uint64_t, int>, int>(
          [](const std::pair<uint64_t, int>& e) { return e.first; },
          [](const std::pair<uint64_t, int>& e, int& last,
             const std::function<void(std::pair<uint64_t, int>)>& emit) {
            emit({e.first, e.second});
            last = e.second;
          },
          4)
      .CollectInto(&output);
  pipeline.Run();
  std::unordered_map<uint64_t, int> last_seen;
  for (const auto& [key, value] : output) {
    auto it = last_seen.find(key);
    if (it != last_seen.end()) {
      EXPECT_GT(value, it->second);
    }
    last_seen[key] = value;
  }
  EXPECT_EQ(output.size(), input.size());
}

TEST(PipelineTest, ParallelKeyedStrideKeysSpreadAcrossWorkers) {
  // Regression for the identity-hash router: vessel-ID-style keys
  // stepping by a multiple of the parallelism all satisfy
  // key % parallelism == const, so routing with std::hash (identity in
  // libstdc++) starves every worker but one. The Mix64 router must keep
  // every worker loaded; per-worker load is read off the stage row's
  // nested worker_edges snapshots.
  constexpr size_t kWorkers = 4;
  std::vector<std::pair<uint64_t, int>> input;
  for (int i = 0; i < 4000; ++i) {
    input.push_back(
        {200000000u + static_cast<uint64_t>(i) * (kWorkers * 4), i});
  }
  Pipeline pipeline;
  std::vector<std::pair<uint64_t, int>> output;
  Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input)
      .KeyedProcessParallel<std::pair<uint64_t, int>, int>(
          [](const std::pair<uint64_t, int>& e) { return e.first; },
          [](const std::pair<uint64_t, int>& e, int&,
             const std::function<void(std::pair<uint64_t, int>)>& emit) {
            emit(e);
          },
          kWorkers, nullptr, {.name = "stride"})
      .CollectInto(&output);
  pipeline.Run();
  EXPECT_EQ(output.size(), input.size());

  size_t workers_seen = 0;
  uint64_t min_load = std::numeric_limits<uint64_t>::max();
  uint64_t max_load = 0;
  for (const StageMetrics& m : pipeline.Report()) {
    if (m.stage != "stride") continue;
    for (const StageMetrics& e : m.worker_edges) {
      ++workers_seen;
      min_load = std::min(min_load, e.records_in);
      max_load = std::max(max_load, e.records_in);
    }
  }
  ASSERT_EQ(workers_seen, kWorkers);
  const double mean = static_cast<double>(input.size()) / kWorkers;
  EXPECT_GT(min_load, mean / 2);
  EXPECT_LT(max_load, mean * 2);
}

// ------------------------------------------- Pipeline: shutdown semantics

// Runs `body` on a watchdog: fails the test (instead of hanging forever)
// when the pipeline does not shut down within the timeout. The worker is
// detached so a deadlock regression is reported, not inherited.
void ExpectCompletesWithin(std::function<void()> body, int timeout_ms) {
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> finished = done->get_future();
  std::thread([body = std::move(body), done] {
    body();
    done->set_value();
  }).detach();
  ASSERT_EQ(finished.wait_for(std::chrono::milliseconds(timeout_ms)),
            std::future_status::ready)
      << "Pipeline::Run() hung: shutdown deadlock regression";
}

TEST(PipelineShutdownTest, SinkStopsMidStreamWithoutHanging) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<int> input(100000);
        std::iota(input.begin(), input.end(), 0);
        size_t seen = 0;
        // Tiny capacities guarantee the source is blocked in Push when
        // the sink walks away.
        Flow<int>::FromVector(&pipeline, input, {.capacity = 4})
            .Map<int>([](const int& x) { return x + 1; }, {.capacity = 4})
            .SinkWhile([&seen](const int&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_EQ(seen, 10u);
      },
      5000);
}

TEST(PipelineShutdownTest, FlatMapConsumerClosesEarlyDoesNotHang) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<int> input(50000);
        std::iota(input.begin(), input.end(), 0);
        size_t seen = 0;
        Flow<int>::FromVector(&pipeline, input, {.capacity = 2})
            .FlatMap<int>(
                [](const int& x) {
                  return std::vector<int>{x, x, x};
                },
                {.capacity = 2})
            .SinkWhile([&seen](const int&) { return ++seen < 5; });
        pipeline.Run();
        EXPECT_GE(seen, 5u);
      },
      5000);
}

TEST(PipelineShutdownTest, KeyedProcessEarlyCloseDoesNotHang) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<std::pair<uint64_t, int>> input;
        for (int i = 0; i < 50000; ++i) {
          input.push_back({static_cast<uint64_t>(i % 13), i});
        }
        size_t seen = 0;
        Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input,
                                                   {.capacity = 4})
            .KeyedProcess<int, int>(
                [](const std::pair<uint64_t, int>& e) { return e.first; },
                [](const std::pair<uint64_t, int>& e, int& sum,
                   const std::function<void(int)>& emit) {
                  sum += e.second;
                  emit(sum);
                },
                nullptr, {.capacity = 4})
            .SinkWhile([&seen](const int&) { return ++seen < 7; });
        pipeline.Run();
        EXPECT_GE(seen, 7u);
      },
      5000);
}

TEST(PipelineShutdownTest, KeyedProcessParallelEarlyCloseDoesNotHang) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        std::vector<std::pair<uint64_t, int>> input;
        for (int i = 0; i < 100000; ++i) {
          input.push_back({static_cast<uint64_t>(i % 31), i});
        }
        size_t seen = 0;
        Flow<std::pair<uint64_t, int>>::FromVector(&pipeline, input,
                                                   {.capacity = 8})
            .KeyedProcessParallel<int, int>(
                [](const std::pair<uint64_t, int>& e) { return e.first; },
                [](const std::pair<uint64_t, int>& e, int& sum,
                   const std::function<void(int)>& emit) {
                  sum += e.second;
                  emit(sum);
                },
                /*parallelism=*/4, nullptr, {.capacity = 8})
            .SinkWhile([&seen](const int&) { return ++seen < 10; });
        pipeline.Run();
        EXPECT_GE(seen, 10u);
      },
      5000);
}

TEST(PipelineShutdownTest, GeneratorStopsWhenDownstreamCancels) {
  ExpectCompletesWithin(
      [] {
        Pipeline pipeline;
        // An infinite source: only cancellation can end this job.
        int i = 0;
        size_t seen = 0;
        Flow<int>::FromGenerator(
            &pipeline, [&i]() -> std::optional<int> { return i++; },
            {.capacity = 4})
            .Filter([](const int& x) { return x % 2 == 0; }, {.capacity = 4})
            .SinkWhile([&seen](const int&) { return ++seen < 25; });
        pipeline.Run();
        EXPECT_EQ(seen, 25u);
      },
      5000);
}

// --------------------------------------------- Pipeline: stage metrics

TEST(PipelineMetricsTest, ReportExposesPerStageCounts) {
  Pipeline pipeline;
  std::vector<int> input(1000);
  std::iota(input.begin(), input.end(), 0);
  std::vector<int> output;
  Flow<int>::FromVector(&pipeline, input, {.name = "src", .capacity = 64})
      .Map<int>([](const int& x) { return x * 2; },
                {.name = "double", .capacity = 64})
      .Filter([](const int& x) { return x % 4 == 0; },
              {.name = "mult4", .capacity = 64})
      .CollectInto(&output);
  pipeline.Run();
  ASSERT_EQ(output.size(), 500u);

  auto report = pipeline.Report();
  ASSERT_EQ(report.size(), 3u);
  auto find = [&](const std::string& name) -> const StageMetrics& {
    for (const auto& m : report) {
      if (m.stage == name) return m;
    }
    ADD_FAILURE() << "missing stage " << name;
    static StageMetrics empty;
    return empty;
  };
  EXPECT_EQ(find("src").records_in, 1000u);
  EXPECT_EQ(find("src").records_out, 1000u);
  EXPECT_EQ(find("double").records_in, 1000u);
  EXPECT_EQ(find("mult4").records_in, 500u);
  EXPECT_EQ(find("mult4").records_out, 500u);
  for (const auto& m : report) {
    EXPECT_FALSE(m.cancelled) << m.stage;
    EXPECT_EQ(m.push_rejected, 0u) << m.stage;
  }
  // Renderers carry the counters plus the pipeline's lifetime fields.
  EXPECT_NE(pipeline.ReportString().find("src"), std::string::npos);
  const std::string json = pipeline.ReportJson();
  EXPECT_NE(json.find("\"records_in\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"started_at_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_ms\":"), std::string::npos);
  // Uptime froze when Run() returned: later reads agree.
  EXPECT_GE(pipeline.uptime_ms(), 0);
  EXPECT_EQ(pipeline.uptime_ms(), pipeline.uptime_ms());
}

TEST(PipelineMetricsTest, AutoNamedStagesAndCancelledEdgeVisible) {
  Pipeline pipeline;
  std::vector<int> input(10000);
  std::iota(input.begin(), input.end(), 0);
  size_t seen = 0;
  Flow<int>::FromVector(&pipeline, input, {.capacity = 4})
      .Map<int>([](const int& x) { return x; }, {.capacity = 4})
      .SinkWhile([&seen](const int&) { return ++seen < 3; });
  pipeline.Run();
  auto report = pipeline.Report();
  ASSERT_EQ(report.size(), 2u);
  // Auto-generated names follow "<op>#<index>".
  EXPECT_NE(report[0].stage.find("source#"), std::string::npos);
  EXPECT_NE(report[1].stage.find("map#"), std::string::npos);
  // The map output edge was cancelled by the early-stopping sink.
  EXPECT_TRUE(report[1].cancelled);
}

TEST(PipelineMetricsTest, BackpressureShowsAsProducerBlockedTime) {
  Pipeline pipeline;
  std::vector<int> input(256);
  std::iota(input.begin(), input.end(), 0);
  Flow<int>::FromVector(&pipeline, input, {.name = "src", .capacity = 2})
      .Sink([](const int&) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });
  pipeline.Run();
  auto report = pipeline.Report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_GT(report[0].producer_blocked_ns, 0u);  // slow consumer visible
}

// -------------------------------------- Pipeline: keyed tumbling windows

TEST(PipelineWindowTest, KeyedTumblingWindowAggregatesAndCountsLate) {
  using Element = std::pair<uint64_t, TimeMs>;
  Pipeline pipeline;
  std::vector<Element> input = {
      {1, 100}, {2, 500}, {1, 900},  {1, 1100},
      {2, 1500}, {1, 2100}, {1, 50},  // last one: too late for key 1
  };
  using Result = std::pair<uint64_t, TumblingWindower<Element, int>::WindowResult>;
  std::vector<Result> output;
  Flow<Element>::FromVector(&pipeline, input)
      .KeyedTumblingWindow<int>(
          [](const Element& e) { return e.first; },
          [](const Element& e) { return e.second; },
          /*window_ms=*/1000, /*allowed_lateness_ms=*/0,
          [](int& acc, const Element&, TimeMs) { ++acc; },
          {.name = "win1s"})
      .CollectInto(&output);
  pipeline.Run();

  // Per-key window counts: key 1 -> [0,1000)=2, [1000,2000)=1, [2000,3000)=1;
  // key 2 -> [0,1000)=1, [1000,2000)=1. The (1,50) element is late-dropped.
  std::map<std::pair<uint64_t, TimeMs>, int> counts;
  for (const auto& [key, wr] : output) {
    counts[{key, wr.window_start}] += wr.value;
  }
  EXPECT_EQ(counts.size(), 5u);
  EXPECT_EQ((counts[{1, 0}]), 2);
  EXPECT_EQ((counts[{1, 1000}]), 1);
  EXPECT_EQ((counts[{1, 2000}]), 1);
  EXPECT_EQ((counts[{2, 0}]), 1);
  EXPECT_EQ((counts[{2, 1000}]), 1);

  // The drop is wired into the stage's metrics.
  auto report = pipeline.Report();
  uint64_t late = 0;
  for (const auto& m : report) {
    if (m.stage == "win1s") late = m.late_dropped;
  }
  EXPECT_EQ(late, 1u);
}

// ---------------------------------------------------------------- Window

TEST(WindowTest, TumblingAssignsByEventTime) {
  TumblingWindower<int, int> w(
      1000, 0, [](int& acc, const int& v, TimeMs) { acc += v; });
  EXPECT_TRUE(w.Add(1, 100).empty());
  EXPECT_TRUE(w.Add(2, 900).empty());
  auto closed = w.Add(3, 1100);  // watermark passes window [0, 1000)
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].window_start, 0);
  EXPECT_EQ(closed[0].value, 3);
  auto rest = w.Close();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].value, 3);
}

TEST(WindowTest, AllowedLatenessHoldsWindowsOpen) {
  TumblingWindower<int, int> w(
      1000, 500, [](int& acc, const int& v, TimeMs) { acc += v; });
  w.Add(1, 100);
  // Watermark = 1100 - 500 = 600 < 1000: window [0,1000) stays open.
  EXPECT_TRUE(w.Add(2, 1100).empty());
  // Late-but-allowed element still lands in [0, 1000).
  w.Add(10, 700);
  auto closed = w.Add(3, 1600);  // watermark 1100 closes [0, 1000)
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].value, 11);  // 1 + the late 10
  auto rest = w.Close();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].value, 5);  // 2 + 3 in [1000, 2000)
}

TEST(WindowTest, TooLateElementsDropped) {
  TumblingWindower<int, int> w(
      1000, 0, [](int& acc, const int& v, TimeMs) { acc += v; });
  w.Add(1, 100);
  w.Add(2, 2500);  // watermark 2500, closes [0,1000) and [1000,2000)
  w.Add(99, 100);  // too late
  EXPECT_EQ(w.late_dropped(), 1u);
  auto rest = w.Close();
  ASSERT_EQ(rest.size(), 1u);  // only [2000, 3000) with the value 2
  EXPECT_EQ(rest[0].value, 2);
}

TEST(WindowTest, HugeLatenessDoesNotUnderflowWatermark) {
  // Regression: watermark = max_event_time - lateness used to underflow
  // TimeMs for large lateness, wrapping to a huge positive watermark that
  // silently dropped every subsequent element.
  TumblingWindower<int, int> w(
      1000, std::numeric_limits<TimeMs>::max(),
      [](int& acc, const int& v, TimeMs) { acc += v; });
  EXPECT_TRUE(w.Add(1, 0).empty());
  EXPECT_TRUE(w.Add(2, 500).empty());   // must NOT be late-dropped
  EXPECT_TRUE(w.Add(3, 1500).empty());  // lateness holds everything open
  EXPECT_EQ(w.late_dropped(), 0u);
  // Without wrapping, the watermark stays far in the past (no drops).
  EXPECT_LT(w.watermark(), 0);
  auto rest = w.Close();
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].value, 3);  // [0, 1000)
  EXPECT_EQ(rest[1].value, 3);  // [1000, 2000)
}

TEST(WindowTest, NegativeEventTimesWithLatenessStayClamped) {
  TumblingWindower<int, int> w(
      1000, 1'000'000'000'000,
      [](int& acc, const int& v, TimeMs) { acc += v; });
  // Negative event times with lateness exceeding their distance to the
  // bottom of the TimeMs range: max_event_time - lateness would wrap
  // without the clamp.
  const TimeMs low = std::numeric_limits<TimeMs>::min() + 500'000'000'000;
  EXPECT_TRUE(w.Add(1, low).empty());
  EXPECT_TRUE(w.Add(2, low + 5).empty());
  EXPECT_EQ(w.late_dropped(), 0u);
  EXPECT_EQ(w.watermark(), std::numeric_limits<TimeMs>::min());
  auto rest = w.Close();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].value, 3);
}

TEST(WindowTest, NegativeLatenessTreatedAsZero) {
  TumblingWindower<int, int> w(
      1000, -500, [](int& acc, const int& v, TimeMs) { acc += v; });
  w.Add(1, 100);
  auto closed = w.Add(2, 1100);  // watermark 1100 (not 1600)
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].value, 1);
}

TEST(WindowTest, MultipleWindowsCloseInOrder) {
  TumblingWindower<int, int> w(
      10, 0, [](int& acc, const int&, TimeMs) { ++acc; });
  w.Add(0, 5);
  w.Add(0, 15);
  w.Add(0, 25);
  auto closed = w.Add(0, 35);
  // Windows [0,10) [10,20) [20,30) all closed by watermark 35.
  std::vector<TimeMs> starts;
  for (auto& c : closed) starts.push_back(c.window_start);
  // First two closed earlier; ensure ordering is non-decreasing overall.
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
}

}  // namespace
}  // namespace tcmf::stream
