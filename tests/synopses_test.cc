#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "geom/geo.h"
#include "synopses/batch_simplify.h"
#include "synopses/critical_points.h"

namespace tcmf::synopses {
namespace {

/// Builds a straight-line cruise at constant speed/heading.
std::vector<Position> StraightLine(uint64_t id, TimeMs t0, int count,
                                   TimeMs interval_ms, double speed = 6.0,
                                   double heading = 90.0) {
  std::vector<Position> out;
  geom::LonLat pos{3.0, 40.0};
  for (int i = 0; i < count; ++i) {
    Position p;
    p.entity_id = id;
    p.t = t0 + i * interval_ms;
    p.lon = pos.lon;
    p.lat = pos.lat;
    p.speed_mps = speed;
    p.heading_deg = heading;
    out.push_back(p);
    pos = geom::Destination(
        pos, heading,
        speed * static_cast<double>(interval_ms) / kMillisPerSecond);
  }
  return out;
}

std::vector<CriticalPoint> Feed(SynopsesGenerator& gen,
                                const std::vector<Position>& stream) {
  std::vector<CriticalPoint> out;
  for (const Position& p : stream) {
    for (CriticalPoint& cp : gen.Observe(p)) out.push_back(cp);
  }
  return out;
}

size_t CountType(const std::vector<CriticalPoint>& cps,
                 CriticalPointType type) {
  size_t n = 0;
  for (const auto& cp : cps) {
    if (cp.type == type) ++n;
  }
  return n;
}

TEST(SynopsesTest, FirstReportIsStart) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto cps = Feed(gen, StraightLine(1, 0, 1, 10000));
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_EQ(cps[0].type, CriticalPointType::kStart);
}

TEST(SynopsesTest, StraightCruiseEmitsAlmostNothing) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto cps = Feed(gen, StraightLine(1, 0, 500, 10000));
  // Only the start point; >99% compression on a straight course.
  EXPECT_LE(cps.size(), 3u);
  EXPECT_GT(gen.CompressionRatio(), 0.99);
}

TEST(SynopsesTest, FlushEmitsEnd) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  Feed(gen, StraightLine(1, 0, 10, 10000));
  auto end = gen.Flush();
  ASSERT_EQ(end.size(), 1u);
  EXPECT_EQ(end[0].type, CriticalPointType::kEnd);
}

TEST(SynopsesTest, TurnEmitsChangeInHeading) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto leg1 = StraightLine(1, 0, 30, 10000, 6.0, 90.0);
  // Second leg departs from the end of leg 1, heading north.
  std::vector<Position> leg2 = StraightLine(1, 300000, 30, 10000, 6.0, 0.0);
  for (auto& p : leg2) {
    p.lon = leg1.back().lon;  // co-located continuation is fine here
  }
  auto all = leg1;
  all.insert(all.end(), leg2.begin(), leg2.end());
  auto cps = Feed(gen, all);
  EXPECT_GE(CountType(cps, CriticalPointType::kChangeInHeading), 1u);
}

TEST(SynopsesTest, StopDetectedAfterMinDuration) {
  SynopsesConfig config = SynopsesConfig::ForMaritime();
  SynopsesGenerator gen(config);
  auto moving = StraightLine(1, 0, 10, 10000, 6.0);
  auto stopped = StraightLine(1, 100000, 20, 10000, 0.0);
  for (auto& p : stopped) {
    p.lon = moving.back().lon;
    p.lat = moving.back().lat;
  }
  auto all = moving;
  all.insert(all.end(), stopped.begin(), stopped.end());
  auto cps = Feed(gen, all);
  EXPECT_EQ(CountType(cps, CriticalPointType::kStop), 1u);
}

TEST(SynopsesTest, StopEndOnResume) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto stopped = StraightLine(1, 0, 20, 10000, 0.0);
  auto moving = StraightLine(1, 200000, 10, 10000, 6.0);
  auto all = stopped;
  all.insert(all.end(), moving.begin(), moving.end());
  auto cps = Feed(gen, all);
  EXPECT_EQ(CountType(cps, CriticalPointType::kStop), 1u);
  EXPECT_EQ(CountType(cps, CriticalPointType::kStopEnd), 1u);
}

TEST(SynopsesTest, SlowMotionDetected) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto fast = StraightLine(1, 0, 10, 10000, 6.0);
  auto slow = StraightLine(1, 100000, 20, 10000, 1.5);
  auto all = fast;
  all.insert(all.end(), slow.begin(), slow.end());
  auto cps = Feed(gen, all);
  EXPECT_EQ(CountType(cps, CriticalPointType::kSlowMotionStart), 1u);
}

TEST(SynopsesTest, GapEmitsStartAndEnd) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto before = StraightLine(1, 0, 5, 10000);
  auto after = StraightLine(1, 40 * kMillisPerMinute, 5, 10000);
  auto all = before;
  all.insert(all.end(), after.begin(), after.end());
  auto cps = Feed(gen, all);
  EXPECT_EQ(CountType(cps, CriticalPointType::kGapStart), 1u);
  EXPECT_EQ(CountType(cps, CriticalPointType::kGapEnd), 1u);
}

TEST(SynopsesTest, SpeedChangeDetected) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto slow = StraightLine(1, 0, 20, 10000, 5.0);
  auto fast = StraightLine(1, 200000, 10, 10000, 9.0);
  for (auto& p : fast) {
    p.lon = slow.back().lon + 0.01;
  }
  auto all = slow;
  all.insert(all.end(), fast.begin(), fast.end());
  auto cps = Feed(gen, all);
  EXPECT_GE(CountType(cps, CriticalPointType::kSpeedChange), 1u);
}

TEST(SynopsesTest, TakeoffAndLanding) {
  SynopsesGenerator gen(SynopsesConfig::ForAviation());
  std::vector<Position> flight;
  for (int i = 0; i < 60; ++i) {
    Position p;
    p.entity_id = 1;
    p.t = i * 8000;
    p.lon = 2.0 + i * 0.01;
    p.lat = 41.0;
    p.speed_mps = 150.0;
    p.heading_deg = 90.0;
    // On ground for 5 reports, climb, cruise, descend, land at 55.
    if (i < 5) p.alt_m = 0;
    else if (i < 25) p.alt_m = (i - 4) * 400.0;
    else if (i < 40) p.alt_m = 8000.0;
    else if (i < 55) p.alt_m = 8000.0 - (i - 39) * 533.0;
    else p.alt_m = 0.0;
    flight.push_back(p);
  }
  auto cps = Feed(gen, flight);
  EXPECT_EQ(CountType(cps, CriticalPointType::kTakeoff), 1u);
  EXPECT_EQ(CountType(cps, CriticalPointType::kLanding), 1u);
}

TEST(SynopsesTest, AltitudeChangeOnClimbTransitions) {
  SynopsesGenerator gen(SynopsesConfig::ForAviation());
  std::vector<Position> flight;
  for (int i = 0; i < 60; ++i) {
    Position p;
    p.entity_id = 1;
    p.t = i * 8000;
    p.lon = 2.0 + i * 0.01;
    p.lat = 41.0;
    p.speed_mps = 200.0;
    p.heading_deg = 90.0;
    p.alt_m = 5000.0;
    p.vrate_mps = (i >= 20 && i < 40) ? 12.0 : 0.0;  // climb burst
    flight.push_back(p);
  }
  auto cps = Feed(gen, flight);
  // One transition into the climb, one out of it.
  EXPECT_EQ(CountType(cps, CriticalPointType::kChangeInAltitude), 2u);
}

TEST(SynopsesTest, OutOfOrderReportsIgnored) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto line = StraightLine(1, 0, 10, 10000);
  Feed(gen, line);
  Position stale = line[2];
  EXPECT_TRUE(gen.Observe(stale).empty());
}

TEST(SynopsesTest, PerEntityIndependence) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  auto a = StraightLine(1, 0, 50, 10000);
  auto b = StraightLine(2, 0, 50, 10000);
  std::vector<Position> merged;
  for (size_t i = 0; i < a.size(); ++i) {
    merged.push_back(a[i]);
    merged.push_back(b[i]);
  }
  auto cps = Feed(gen, merged);
  EXPECT_EQ(CountType(cps, CriticalPointType::kStart), 2u);
}

TEST(SynopsesTest, InterpolateAtCriticalTimes) {
  std::vector<CriticalPoint> synopsis;
  Position a;
  a.t = 0;
  a.lon = 0;
  a.lat = 40;
  Position b = a;
  b.t = 10000;
  b.lon = 1.0;
  synopsis.push_back({a, CriticalPointType::kStart});
  synopsis.push_back({b, CriticalPointType::kEnd});
  Position mid = InterpolateSynopsis(synopsis, 5000);
  EXPECT_NEAR(mid.lon, 0.5, 1e-9);
  Position before = InterpolateSynopsis(synopsis, -100);
  EXPECT_DOUBLE_EQ(before.lon, 0.0);
  Position after = InterpolateSynopsis(synopsis, 99999);
  EXPECT_DOUBLE_EQ(after.lon, 1.0);
}

TEST(SynopsesTest, ReconstructionErrorSmallOnRealTraffic) {
  // End-to-end property: on simulated vessel traffic, the synopsis must
  // compress heavily while reconstructing within a modest error.
  datagen::VesselSimConfig config;
  config.vessel_count = 10;
  config.duration_ms = 3 * kMillisPerHour;
  config.position_noise_m = 0.0;
  config.gap_probability = 0.0;
  Rng rng(42);
  auto ports = datagen::MakePorts(rng, config.extent, 5);
  auto fishing =
      datagen::MakeRegions(rng, config.extent, 3, "fishing", 10000, 30000);
  datagen::VesselSimulator sim(config, ports, fishing, nullptr);
  auto out = sim.Run();

  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  std::unordered_map<uint64_t, std::vector<CriticalPoint>> synopses;
  for (const auto& traj : out.truth) {
    for (const Position& p : traj.points) {
      for (CriticalPoint& cp : gen.Observe(p)) {
        synopses[cp.pos.entity_id].push_back(cp);
      }
    }
  }
  for (CriticalPoint& cp : gen.Flush()) {
    synopses[cp.pos.entity_id].push_back(cp);
  }

  EXPECT_GT(gen.CompressionRatio(), 0.5);
  double total_rmse = 0.0;
  for (const auto& traj : out.truth) {
    ReconstructionError err =
        EvaluateReconstruction(traj, synopses[traj.entity_id]);
    total_rmse += err.rmse_m;
  }
  EXPECT_LT(total_rmse / out.truth.size(), 1500.0);
}

TEST(SynopsesTest, CompressionRatioZeroWhenEmpty) {
  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  EXPECT_DOUBLE_EQ(gen.CompressionRatio(), 0.0);
}

TEST(SynopsesTest, TypeNamesComplete) {
  EXPECT_STREQ(CriticalPointTypeName(CriticalPointType::kStop), "stop");
  EXPECT_STREQ(CriticalPointTypeName(CriticalPointType::kTakeoff),
               "takeoff");
  EXPECT_STREQ(CriticalPointTypeName(CriticalPointType::kGapEnd), "gap_end");
}


// ------------------------------------------------------- BatchSimplify

TEST(BatchSimplifyTest, StraightLineCollapsesToEndpoints) {
  auto line = StraightLine(1, 0, 100, 10000);
  auto dp = DouglasPeucker(line, 100.0);
  EXPECT_EQ(dp.size(), 2u);
  EXPECT_EQ(dp.front().t, line.front().t);
  EXPECT_EQ(dp.back().t, line.back().t);
}

TEST(BatchSimplifyTest, CornerIsRetained) {
  auto leg1 = StraightLine(1, 0, 20, 10000, 6.0, 90.0);
  std::vector<Position> leg2 =
      StraightLine(1, 200000, 20, 10000, 6.0, 0.0);
  for (auto& p : leg2) {
    // Continue from the end of leg 1 heading north.
    p.lon = leg1.back().lon;
  }
  auto all = leg1;
  all.insert(all.end(), leg2.begin(), leg2.end());
  auto dp = DouglasPeucker(all, 200.0);
  EXPECT_GE(dp.size(), 3u);  // endpoints + the corner
  // Some retained point lies near the corner.
  bool corner_kept = false;
  for (const Position& p : dp) {
    if (geom::HaversineM(p.lon, p.lat, leg1.back().lon, leg1.back().lat) <
        1500.0) {
      corner_kept = true;
    }
  }
  EXPECT_TRUE(corner_kept);
}

TEST(BatchSimplifyTest, TighterEpsilonKeepsMore) {
  datagen::VesselSimConfig config;
  config.vessel_count = 3;
  config.duration_ms = 2 * kMillisPerHour;
  Rng rng(2);
  auto ports = datagen::MakePorts(rng, config.extent, 4);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();
  for (const auto& traj : data.truth) {
    auto tight = DouglasPeucker(traj.points, 50.0);
    auto loose = DouglasPeucker(traj.points, 2000.0);
    EXPECT_GE(tight.size(), loose.size());
  }
}

TEST(BatchSimplifyTest, SedBoundsReconstructionError) {
  // Property: the SED variant's epsilon bounds the time-synchronized
  // reconstruction error at every dropped point.
  datagen::VesselSimConfig config;
  config.vessel_count = 4;
  config.duration_ms = 2 * kMillisPerHour;
  Rng rng(3);
  auto ports = datagen::MakePorts(rng, config.extent, 4);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();
  for (const auto& traj : data.truth) {
    double eps = 500.0;
    auto kept = DouglasPeuckerSed(traj.points, eps);
    std::vector<CriticalPoint> wrapped;
    for (const Position& p : kept) {
      wrapped.push_back({p, CriticalPointType::kStart});
    }
    ReconstructionError err = EvaluateReconstruction(traj, wrapped);
    EXPECT_LE(err.max_m, eps + 1.0) << "vessel " << traj.entity_id;
  }
}

TEST(BatchSimplifyTest, TinyInputsPassThrough) {
  std::vector<Position> empty;
  EXPECT_TRUE(DouglasPeucker(empty, 100.0).empty());
  auto two = StraightLine(1, 0, 2, 1000);
  EXPECT_EQ(DouglasPeucker(two, 100.0).size(), 2u);
}

// Parameterized sweep: compression must be high across report rates and
// grow (or hold) as the reporting rate increases (the Section 4.2.2
// claim: 80% at moderate rates, up to 99% at high rates).
class CompressionSweep : public ::testing::TestWithParam<TimeMs> {};

TEST_P(CompressionSweep, CompressesAtAllRates) {
  TimeMs interval = GetParam();
  datagen::VesselSimConfig config;
  config.vessel_count = 6;
  config.duration_ms = 2 * kMillisPerHour;
  config.report_interval_ms = interval;
  config.position_noise_m = 0.0;
  config.gap_probability = 0.0;
  Rng rng(1);
  auto ports = datagen::MakePorts(rng, config.extent, 4);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto out = sim.Run();

  SynopsesGenerator gen(SynopsesConfig::ForMaritime());
  for (const auto& traj : out.truth) {
    for (const Position& p : traj.points) gen.Observe(p);
  }
  EXPECT_GT(gen.CompressionRatio(), 0.55) << "interval " << interval;
}

INSTANTIATE_TEST_SUITE_P(Rates, CompressionSweep,
                         ::testing::Values(2000, 5000, 10000, 30000));

}  // namespace
}  // namespace tcmf::synopses
