#include <gtest/gtest.h>

#include "geom/geo.h"
#include "insitu/lowlevel.h"

namespace tcmf::insitu {
namespace {

Position MakePos(uint64_t id, TimeMs t, double lon, double lat,
                 double speed = 5.0) {
  Position p;
  p.entity_id = id;
  p.t = t;
  p.lon = lon;
  p.lat = lat;
  p.speed_mps = speed;
  return p;
}

// ------------------------------------------------------------ StatsTracker

TEST(StatsTrackerTest, TracksSpeedStats) {
  TrajectoryStatsTracker tracker;
  tracker.Observe(MakePos(1, 0, 0, 40, 2.0));
  tracker.Observe(MakePos(1, 10000, 0.001, 40, 4.0));
  tracker.Observe(MakePos(1, 20000, 0.002, 40, 6.0));
  const auto* s = tracker.Get(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->speed.count(), 3u);
  EXPECT_DOUBLE_EQ(s->speed.min(), 2.0);
  EXPECT_DOUBLE_EQ(s->speed.max(), 6.0);
  EXPECT_DOUBLE_EQ(s->speed.mean(), 4.0);
}

TEST(StatsTrackerTest, AccelerationFromConsecutiveReports) {
  TrajectoryStatsTracker tracker;
  tracker.Observe(MakePos(1, 0, 0, 40, 0.0));
  tracker.Observe(MakePos(1, 10000, 0, 40, 5.0));  // +0.5 m/s^2
  const auto* s = tracker.Get(1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->acceleration.count(), 1u);
  EXPECT_NEAR(s->acceleration.mean(), 0.5, 1e-9);
  EXPECT_NEAR(s->report_interval_s.mean(), 10.0, 1e-9);
}

TEST(StatsTrackerTest, EntitiesAreIndependent) {
  TrajectoryStatsTracker tracker;
  tracker.Observe(MakePos(1, 0, 0, 40, 2.0));
  tracker.Observe(MakePos(2, 0, 0, 41, 9.0));
  EXPECT_DOUBLE_EQ(tracker.Get(1)->speed.mean(), 2.0);
  EXPECT_DOUBLE_EQ(tracker.Get(2)->speed.mean(), 9.0);
  EXPECT_EQ(tracker.Get(99), nullptr);
}

// ------------------------------------------------------ AreaTransitions

class AreaDetectorTest : public ::testing::Test {
 protected:
  AreaDetectorTest() {
    geom::Area a;
    a.id = 7;
    a.kind = "protected";
    a.shape = geom::Polygon({{1, 1}, {2, 1}, {2, 2}, {1, 2}});
    areas_.push_back(a);
    geom::Area b;
    b.id = 8;
    b.kind = "fishing";
    b.shape = geom::Polygon({{1.5, 1.5}, {3, 1.5}, {3, 3}, {1.5, 3}});
    areas_.push_back(b);
  }

  std::vector<geom::Area> areas_;
  geom::BBox extent_{0, 0, 5, 5};
};

TEST_F(AreaDetectorTest, EntryAndExit) {
  AreaTransitionDetector detector(areas_, extent_);
  auto e1 = detector.Observe(MakePos(1, 0, 0.5, 0.5));
  EXPECT_TRUE(e1.empty());
  auto e2 = detector.Observe(MakePos(1, 1000, 1.2, 1.2));
  ASSERT_EQ(e2.size(), 1u);
  EXPECT_EQ(e2[0].type, AreaEvent::Type::kEntry);
  EXPECT_EQ(e2[0].area_id, 7u);
  EXPECT_EQ(e2[0].area_kind, "protected");
  auto e3 = detector.Observe(MakePos(1, 2000, 0.5, 0.5));
  ASSERT_EQ(e3.size(), 1u);
  EXPECT_EQ(e3[0].type, AreaEvent::Type::kExit);
}

TEST_F(AreaDetectorTest, OverlappingAreasBothReported) {
  AreaTransitionDetector detector(areas_, extent_);
  auto events = detector.Observe(MakePos(1, 0, 1.7, 1.7));  // in both
  EXPECT_EQ(events.size(), 2u);
  auto current = detector.CurrentAreas(1);
  EXPECT_EQ(current.size(), 2u);
}

TEST_F(AreaDetectorTest, CrossingBetweenAreas) {
  AreaTransitionDetector detector(areas_, extent_);
  detector.Observe(MakePos(1, 0, 1.2, 1.2));     // enter 7
  auto events = detector.Observe(MakePos(1, 1, 2.5, 2.5));  // leave 7, enter 8
  ASSERT_EQ(events.size(), 2u);
  bool saw_entry8 = false, saw_exit7 = false;
  for (const auto& e : events) {
    if (e.type == AreaEvent::Type::kEntry && e.area_id == 8) saw_entry8 = true;
    if (e.type == AreaEvent::Type::kExit && e.area_id == 7) saw_exit7 = true;
  }
  EXPECT_TRUE(saw_entry8);
  EXPECT_TRUE(saw_exit7);
}

TEST_F(AreaDetectorTest, NoRepeatedEntryWhileInside) {
  AreaTransitionDetector detector(areas_, extent_);
  detector.Observe(MakePos(1, 0, 1.2, 1.2));
  auto events = detector.Observe(MakePos(1, 1, 1.3, 1.3));
  EXPECT_TRUE(events.empty());
}

TEST_F(AreaDetectorTest, EntitiesTrackedIndependently) {
  AreaTransitionDetector detector(areas_, extent_);
  detector.Observe(MakePos(1, 0, 1.2, 1.2));
  auto events = detector.Observe(MakePos(2, 0, 1.2, 1.2));
  ASSERT_EQ(events.size(), 1u);  // entity 2 gets its own entry event
  EXPECT_EQ(events[0].entity_id, 2u);
}

// ---------------------------------------------------------- StreamCleaner

TEST(StreamCleanerTest, AcceptsNormalProgression) {
  StreamCleaner cleaner(StreamCleaner::Options{});
  EXPECT_EQ(cleaner.Observe(MakePos(1, 0, 0, 40)), CleanVerdict::kOk);
  EXPECT_EQ(cleaner.Observe(MakePos(1, 10000, 0.001, 40)),
            CleanVerdict::kOk);
  EXPECT_EQ(cleaner.accepted(), 2u);
  EXPECT_EQ(cleaner.rejected(), 0u);
}

TEST(StreamCleanerTest, RejectsDuplicateTimestamp) {
  StreamCleaner cleaner(StreamCleaner::Options{});
  cleaner.Observe(MakePos(1, 5000, 0, 40));
  EXPECT_EQ(cleaner.Observe(MakePos(1, 5000, 0.1, 40)),
            CleanVerdict::kDuplicate);
}

TEST(StreamCleanerTest, RejectsOutOfOrder) {
  StreamCleaner cleaner(StreamCleaner::Options{});
  cleaner.Observe(MakePos(1, 5000, 0, 40));
  EXPECT_EQ(cleaner.Observe(MakePos(1, 1000, 0, 40)),
            CleanVerdict::kOutOfOrder);
}

TEST(StreamCleanerTest, RejectsSpeedSpike) {
  StreamCleaner::Options options;
  options.max_speed_mps = 20.0;
  StreamCleaner cleaner(options);
  cleaner.Observe(MakePos(1, 0, 0, 40));
  // 1 degree longitude in 10 s: ~8.5 km/s.
  EXPECT_EQ(cleaner.Observe(MakePos(1, 10000, 1.0, 40)),
            CleanVerdict::kSpeedSpike);
  // The spike is not committed: the next sane report is judged against
  // the pre-spike position.
  EXPECT_EQ(cleaner.Observe(MakePos(1, 20000, 0.001, 40)),
            CleanVerdict::kOk);
}

TEST(StreamCleanerTest, RejectsOutOfRange) {
  StreamCleaner::Options options;
  options.extent = {0, 0, 10, 10};
  StreamCleaner cleaner(options);
  EXPECT_EQ(cleaner.Observe(MakePos(1, 0, 50, 50)),
            CleanVerdict::kOutOfRange);
}

TEST(StreamCleanerTest, RejectCountsByKind) {
  StreamCleaner cleaner(StreamCleaner::Options{});
  cleaner.Observe(MakePos(1, 1000, 0, 40));
  cleaner.Observe(MakePos(1, 1000, 0, 40));
  cleaner.Observe(MakePos(1, 500, 0, 40));
  cleaner.Observe(MakePos(1, 500, 0, 40));
  const auto& by_kind = cleaner.rejects_by_kind();
  EXPECT_EQ(by_kind.at(CleanVerdict::kDuplicate), 1u);
  EXPECT_EQ(by_kind.at(CleanVerdict::kOutOfOrder), 2u);
}

TEST(StreamCleanerTest, VerdictNames) {
  EXPECT_STREQ(CleanVerdictName(CleanVerdict::kOk), "ok");
  EXPECT_STREQ(CleanVerdictName(CleanVerdict::kSpeedSpike), "speed_spike");
}

}  // namespace
}  // namespace tcmf::insitu
