// Oracle-differential harness for the STR/R*-tree (geom/rtree.h) and the
// SpatialIndex backends (geom/spatial_index.h): every query kernel is
// checked as a set against an O(n²) brute-force oracle over seeded
// uniform / clustered / grid-aligned point populations, including
// antimeridian-straddling and near-pole edge cases, k-NN ties, and
// incremental insert/delete against bulk load.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geom/geo.h"
#include "geom/rtree.h"
#include "geom/spatial_index.h"

namespace tcmf::geom {
namespace {

// ---------------------------------------------------------------------
// Point-set generators. Every point is a degenerate StBox with the
// timestamp in [0, 100) so time-window filtering has teeth.

std::vector<RtreeItem> UniformPoints(size_t n, Rng& rng, double min_lon,
                                     double min_lat, double max_lon,
                                     double max_lat) {
  std::vector<RtreeItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({StBox::Point(rng.Uniform(min_lon, max_lon),
                                rng.Uniform(min_lat, max_lat),
                                rng.UniformInt(0, 99)),
                   i});
  }
  return out;
}

/// Port-like traffic: a few Gaussian hotspots holding most points.
std::vector<RtreeItem> ClusteredPoints(size_t n, Rng& rng) {
  struct Hotspot {
    double lon, lat;
  };
  std::vector<Hotspot> hubs;
  for (int i = 0; i < 5; ++i) {
    hubs.push_back({rng.Uniform(-5.0, 9.0), rng.Uniform(36.0, 43.0)});
  }
  std::vector<RtreeItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Hotspot& h = hubs[static_cast<size_t>(rng.UniformInt(0, 4))];
    out.push_back({StBox::Point(h.lon + rng.Gaussian(0.0, 0.05),
                                h.lat + rng.Gaussian(0.0, 0.05),
                                rng.UniformInt(0, 99)),
                   i});
  }
  return out;
}

/// Exact-duplicate-heavy lattice: stresses ties and shared boundaries.
std::vector<RtreeItem> GridAlignedPoints(size_t n, Rng& rng) {
  std::vector<RtreeItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({StBox::Point(static_cast<double>(rng.UniformInt(0, 15)) / 2,
                                35.0 + static_cast<double>(rng.UniformInt(0, 15)) / 2,
                                rng.UniformInt(0, 99)),
                   i});
  }
  return out;
}

// ---------------------------------------------------------------------
// Brute-force oracles. Range handles wrapped query boxes the same way
// the tree documents them (min_lon > max_lon = through the antimeridian).

bool OracleBoxMatch(const StBox& q, const StBox& b) {
  bool lon_ok;
  if (q.min_lon <= q.max_lon) {
    lon_ok = !(b.min_lon > q.max_lon || b.max_lon < q.min_lon);
  } else {
    lon_ok = b.max_lon >= q.min_lon || b.min_lon <= q.max_lon;
  }
  return lon_ok && !(b.min_lat > q.max_lat || b.max_lat < q.min_lat ||
                     b.min_t > q.max_t || b.max_t < q.min_t);
}

std::set<uint64_t> OracleRange(const std::vector<RtreeItem>& items,
                               const StBox& q) {
  std::set<uint64_t> out;
  for (const RtreeItem& it : items) {
    if (OracleBoxMatch(q, it.box)) out.insert(it.id);
  }
  return out;
}

std::set<uint64_t> OracleRadius(const std::vector<RtreeItem>& items,
                                double lon, double lat, double radius_m,
                                TimeMs min_t, TimeMs max_t) {
  std::set<uint64_t> out;
  for (const RtreeItem& it : items) {
    if (!it.box.TimeOverlaps(min_t, max_t)) continue;
    if (HaversineM(lon, lat, it.box.CenterLon(), it.box.CenterLat()) <=
        radius_m) {
      out.insert(it.id);
    }
  }
  return out;
}

/// k-NN oracle with the tree's documented tie rule: sort by (distance,
/// id), take the first k. Distances are the same HaversineM over the
/// same doubles on both sides, so comparison is exact.
std::vector<std::pair<double, uint64_t>> OracleKnn(
    const std::vector<RtreeItem>& items, double lon, double lat, size_t k,
    TimeMs min_t, TimeMs max_t) {
  std::vector<std::pair<double, uint64_t>> all;
  for (const RtreeItem& it : items) {
    if (!it.box.TimeOverlaps(min_t, max_t)) continue;
    all.emplace_back(
        HaversineM(lon, lat, it.box.CenterLon(), it.box.CenterLat()), it.id);
  }
  std::sort(all.begin(), all.end());
  if (all.size() > k) all.resize(k);
  return all;
}

std::set<uint64_t> TreeRange(const RStarTree& tree, const StBox& q) {
  std::set<uint64_t> out;
  tree.Range(q, [&](const RtreeItem& it) {
    EXPECT_TRUE(out.insert(it.id).second) << "duplicate visit id=" << it.id;
  });
  return out;
}

std::set<uint64_t> TreeRadius(const RStarTree& tree, double lon, double lat,
                              double radius_m, TimeMs min_t, TimeMs max_t) {
  std::set<uint64_t> out;
  tree.WithinRadius(lon, lat, radius_m, min_t, max_t,
                    [&](const RtreeItem& it) { out.insert(it.id); });
  return out;
}

// ---------------------------------------------------------------------

TEST(RtreeOracleTest, DifferentialSweepMatchesBruteForce) {
  int combos = 0;
  for (int dist = 0; dist < 3; ++dist) {
    for (uint64_t seed : {7u, 21u, 101u, 733u}) {
      Rng rng(seed + dist * 1000);
      std::vector<RtreeItem> items;
      switch (dist) {
        case 0:
          items = UniformPoints(400, rng, -6.0, 35.0, 10.0, 44.0);
          break;
        case 1:
          items = ClusteredPoints(400, rng);
          break;
        default:
          items = GridAlignedPoints(400, rng);
          break;
      }
      // Odd seeds exercise the incremental insert path, even seeds STR.
      RStarTree tree;
      if (seed % 2 == 0) {
        tree = RStarTree::BulkLoad(items);
      } else {
        for (const RtreeItem& it : items) tree.Insert(it);
      }
      ASSERT_EQ(tree.size(), items.size());

      for (int q = 0; q < 6; ++q) {
        double qlon = rng.Uniform(-7.0, 11.0);
        double qlat = rng.Uniform(34.0, 45.0);
        TimeMs min_t = rng.UniformInt(0, 50);
        TimeMs max_t = min_t + rng.UniformInt(0, 60);

        StBox box{qlon, qlat, qlon + rng.Uniform(0.0, 3.0),
                  qlat + rng.Uniform(0.0, 3.0), min_t, max_t};
        EXPECT_EQ(TreeRange(tree, box), OracleRange(items, box));
        ++combos;

        double radius = rng.Uniform(100.0, 200000.0);
        EXPECT_EQ(TreeRadius(tree, qlon, qlat, radius, min_t, max_t),
                  OracleRadius(items, qlon, qlat, radius, min_t, max_t));
        ++combos;

        size_t k = static_cast<size_t>(rng.UniformInt(1, 30));
        auto got = tree.NearestK(qlon, qlat, k, min_t, max_t);
        auto want = OracleKnn(items, qlon, qlat, k, min_t, max_t);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].second) << "rank " << i;
          EXPECT_EQ(HaversineM(qlon, qlat, got[i].box.CenterLon(),
                               got[i].box.CenterLat()),
                    want[i].first);
        }
        ++combos;
      }
    }
  }
  // The acceptance bar: >= 50 seeded point-set × query combos.
  EXPECT_GE(combos, 50);
}

TEST(RtreeOracleTest, BulkLoadAndIncrementalAgree) {
  Rng rng(99);
  std::vector<RtreeItem> items = ClusteredPoints(600, rng);
  RStarTree bulk = RStarTree::BulkLoad(items);
  RStarTree incr;
  for (const RtreeItem& it : items) incr.Insert(it);
  EXPECT_EQ(bulk.size(), incr.size());
  EXPECT_GT(incr.stats().forced_reinserts, 0u);
  for (int q = 0; q < 12; ++q) {
    double lon = rng.Uniform(-6.0, 10.0), lat = rng.Uniform(35.0, 44.0);
    double r = rng.Uniform(1000.0, 100000.0);
    EXPECT_EQ(TreeRadius(bulk, lon, lat, r, kTimeMin, kTimeMax),
              TreeRadius(incr, lon, lat, r, kTimeMin, kTimeMax));
    auto a = bulk.NearestK(lon, lat, 15);
    auto b = incr.NearestK(lon, lat, 15);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
  }
}

TEST(RtreeOracleTest, KnnTieAtEqualDistanceIsDeterministicById) {
  // Points mirrored north/south of the query latitude are at *exactly*
  // equal haversine distance. All ties must resolve by ascending id.
  RStarTree tree;
  for (uint64_t i = 0; i < 8; ++i) {
    double dlat = 0.1 * static_cast<double>(i / 2 + 1);
    double lat = (i % 2 == 0) ? 40.0 + dlat : 40.0 - dlat;
    tree.Insert({StBox::Point(5.0, lat, 0), 100 - i});  // ids descending
  }
  auto got = tree.NearestK(5.0, 40.0, 8);
  ASSERT_EQ(got.size(), 8u);
  for (size_t i = 0; i + 1 < got.size(); i += 2) {
    double d0 = HaversineM(5.0, 40.0, got[i].box.CenterLon(),
                           got[i].box.CenterLat());
    double d1 = HaversineM(5.0, 40.0, got[i + 1].box.CenterLon(),
                           got[i + 1].box.CenterLat());
    EXPECT_EQ(d0, d1) << "pair " << i << " not an exact tie";
    EXPECT_LT(got[i].id, got[i + 1].id) << "tie not ordered by id";
  }
}

TEST(RtreeOracleTest, AntimeridianStraddlingRangeBox) {
  Rng rng(4242);
  std::vector<RtreeItem> items;
  for (uint64_t i = 0; i < 300; ++i) {
    double lon = rng.Uniform(-180.0, 180.0);
    items.push_back({StBox::Point(lon, rng.Uniform(-50.0, 50.0),
                                  rng.UniformInt(0, 99)),
                     i});
  }
  RStarTree tree = RStarTree::BulkLoad(items);
  // Wrapped query: min_lon > max_lon covers [170, 180] ∪ [-180, -165].
  StBox wrapped{170.0, -30.0, -165.0, 30.0, kTimeMin, kTimeMax};
  std::set<uint64_t> got = TreeRange(tree, wrapped);
  EXPECT_EQ(got, OracleRange(items, wrapped));
  // Sanity: the wrapped result is the union of the two unwrapped halves.
  StBox east{170.0, -30.0, 180.0, 30.0, kTimeMin, kTimeMax};
  StBox west{-180.0, -30.0, -165.0, 30.0, kTimeMin, kTimeMax};
  std::set<uint64_t> unioned = TreeRange(tree, east);
  std::set<uint64_t> w = TreeRange(tree, west);
  unioned.insert(w.begin(), w.end());
  EXPECT_EQ(got, unioned);
}

TEST(RtreeOracleTest, AntimeridianRadiusWraps) {
  // A query just west of the antimeridian must reach points just east
  // of it: 179.8°E to -179.8°W is ~34 km at lat 0, not half the globe.
  RStarTree tree;
  tree.Insert({StBox::Point(-179.8, 0.0, 0), 1});
  tree.Insert({StBox::Point(179.0, 0.0, 0), 2});
  tree.Insert({StBox::Point(0.0, 0.0, 0), 3});
  std::set<uint64_t> got =
      TreeRadius(tree, 179.8, 0.0, 120000.0, kTimeMin, kTimeMax);
  EXPECT_EQ(got, (std::set<uint64_t>{1, 2}));
  auto knn = tree.NearestK(179.8, 0.0, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].id, 1u);  // 0.4° across the seam beats 0.8° within
  EXPECT_EQ(knn[1].id, 2u);
}

TEST(RtreeOracleTest, NearPoleQueryBox) {
  Rng rng(1313);
  std::vector<RtreeItem> items;
  for (uint64_t i = 0; i < 200; ++i) {
    items.push_back({StBox::Point(rng.Uniform(-180.0, 180.0),
                                  rng.Uniform(80.0, 90.0), 0),
                     i});
  }
  RStarTree tree = RStarTree::BulkLoad(items);
  StBox cap{-180.0, 88.0, 180.0, 90.0, kTimeMin, kTimeMax};
  EXPECT_EQ(TreeRange(tree, cap), OracleRange(items, cap));
  // Radius queries centred on the pole: longitude is meaningless there,
  // distance is purely meridional, and the MinDistM bound must not
  // prune valid subtrees.
  for (double radius : {50000.0, 300000.0, 1200000.0}) {
    EXPECT_EQ(TreeRadius(tree, 0.0, 90.0, radius, kTimeMin, kTimeMax),
              OracleRadius(items, 0.0, 90.0, radius, kTimeMin, kTimeMax));
  }
  auto knn = tree.NearestK(45.0, 89.5, 25);
  auto want = OracleKnn(items, 45.0, 89.5, 25, kTimeMin, kTimeMax);
  ASSERT_EQ(knn.size(), want.size());
  for (size_t i = 0; i < knn.size(); ++i) EXPECT_EQ(knn[i].id, want[i].second);
}

TEST(RtreeOracleTest, TimeWindowRangeFiltering) {
  RStarTree tree;
  for (uint64_t i = 0; i < 50; ++i) {
    tree.Insert({StBox::Point(5.0, 40.0, static_cast<TimeMs>(i)), i});
  }
  StBox q{4.0, 39.0, 6.0, 41.0, 10, 19};
  std::set<uint64_t> got = TreeRange(tree, q);
  EXPECT_EQ(got.size(), 10u);
  for (uint64_t id : got) {
    EXPECT_GE(id, 10u);
    EXPECT_LE(id, 19u);
  }
  // Inclusive window ends.
  EXPECT_EQ(TreeRadius(tree, 5.0, 40.0, 1.0, 19, 19),
            (std::set<uint64_t>{19}));
}

TEST(RtreeOracleTest, DegenerateQueries) {
  RStarTree empty;
  EXPECT_TRUE(empty.NearestK(0.0, 0.0, 5).empty());
  EXPECT_EQ(TreeRadius(empty, 0.0, 0.0, 1e7, kTimeMin, kTimeMax).size(), 0u);
  EXPECT_EQ(empty.height(), 0);

  RStarTree one;
  one.Insert({StBox::Point(1.0, 1.0, 0), 7});
  EXPECT_EQ(one.height(), 1);
  // k = 0, k > n, radius 0 on an exact hit.
  EXPECT_TRUE(one.NearestK(1.0, 1.0, 0).empty());
  EXPECT_EQ(one.NearestK(1.0, 1.0, 10).size(), 1u);
  EXPECT_EQ(TreeRadius(one, 1.0, 1.0, 0.0, kTimeMin, kTimeMax),
            (std::set<uint64_t>{7}));
}

// ---------------------------------------------------------------------

TEST(RtreeUpdateTest, DeleteHalfThenQueriesMatchOracle) {
  Rng rng(555);
  std::vector<RtreeItem> items = UniformPoints(500, rng, -6.0, 35.0, 10.0, 44.0);
  RStarTree tree = RStarTree::BulkLoad(items);
  std::vector<RtreeItem> kept;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(tree.Remove(items[i])) << "item " << i;
    } else {
      kept.push_back(items[i]);
    }
  }
  EXPECT_EQ(tree.size(), kept.size());
  EXPECT_GT(tree.stats().condensed_nodes, 0u);
  for (int q = 0; q < 10; ++q) {
    double lon = rng.Uniform(-6.0, 10.0), lat = rng.Uniform(35.0, 44.0);
    double r = rng.Uniform(5000.0, 150000.0);
    EXPECT_EQ(TreeRadius(tree, lon, lat, r, kTimeMin, kTimeMax),
              OracleRadius(kept, lon, lat, r, kTimeMin, kTimeMax));
    StBox box{lon, lat, lon + 2.0, lat + 2.0, kTimeMin, kTimeMax};
    EXPECT_EQ(TreeRange(tree, box), OracleRange(kept, box));
  }
  // Removing everything leaves a clean, reusable tree.
  for (const RtreeItem& it : kept) EXPECT_TRUE(tree.Remove(it));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  tree.Insert({StBox::Point(0.0, 0.0, 0), 1});
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RtreeUpdateTest, ForcedReinsertKeepsAllItems) {
  // Tiny nodes force constant overflow; every item must survive the
  // reinsertion churn and stay queryable.
  RStarTree::Options tiny{4, 2, 1};
  RStarTree tree(tiny);
  Rng rng(31);
  std::vector<RtreeItem> items = ClusteredPoints(300, rng);
  for (const RtreeItem& it : items) tree.Insert(it);
  EXPECT_EQ(tree.size(), items.size());
  EXPECT_GT(tree.stats().forced_reinserts, 0u);
  EXPECT_GT(tree.stats().splits, 0u);
  std::set<uint64_t> all = TreeRadius(tree, 2.0, 39.5, 2e7, kTimeMin, kTimeMax);
  EXPECT_EQ(all.size(), items.size());
}

TEST(RtreeUpdateTest, RemoveMissingReturnsFalse) {
  RStarTree tree;
  EXPECT_FALSE(tree.Remove({StBox::Point(0.0, 0.0, 0), 1}));
  tree.Insert({StBox::Point(0.0, 0.0, 0), 1});
  EXPECT_FALSE(tree.Remove({StBox::Point(0.0, 0.0, 0), 2}));  // wrong id
  EXPECT_FALSE(tree.Remove({StBox::Point(0.0, 0.0, 7), 1}));  // wrong time
  EXPECT_TRUE(tree.Remove({StBox::Point(0.0, 0.0, 0), 1}));
  EXPECT_FALSE(tree.Remove({StBox::Point(0.0, 0.0, 0), 1}));  // already gone
  EXPECT_EQ(tree.size(), 0u);
}

// ---------------------------------------------------------------------

std::multiset<std::pair<uint64_t, TimeMs>> IndexVisit(
    const SpatialIndex& index, double lon, double lat, double radius_m,
    TimeMs min_t) {
  std::multiset<std::pair<uint64_t, TimeMs>> out;
  index.VisitWithinRadius(lon, lat, radius_m, min_t,
                          [&](const IndexPoint& p) {
                            out.insert({p.id, p.t});
                          });
  return out;
}

TEST(SpatialIndexTest, BackendsAgreeOnDynamicWorkload) {
  SpatialIndexConfig config;
  auto scan = MakeSpatialIndex(SpatialBackend::kScan, config);
  auto grid = MakeSpatialIndex(SpatialBackend::kGrid, config);
  auto rtree = MakeSpatialIndex(SpatialBackend::kRtree, config);
  SpatialIndex* indexes[] = {scan.get(), grid.get(), rtree.get()};

  Rng rng(808);
  Rng qrng(809);
  for (int step = 0; step < 1500; ++step) {
    int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op < 6) {
      IndexPoint p{static_cast<uint64_t>(rng.UniformInt(0, 49)),
                   static_cast<TimeMs>(step), rng.Uniform(-8.0, 12.0),
                   rng.Uniform(33.0, 46.0)};  // some points out of extent
      for (SpatialIndex* ix : indexes) ix->Insert(p);
    } else if (op == 6) {
      uint64_t id = static_cast<uint64_t>(rng.UniformInt(0, 49));
      size_t n = scan->RemoveId(id);
      EXPECT_EQ(grid->RemoveId(id), n);
      EXPECT_EQ(rtree->RemoveId(id), n);
    } else if (op == 7) {
      TimeMs cutoff = static_cast<TimeMs>(step - 200);
      size_t n = scan->EvictBefore(cutoff);
      EXPECT_EQ(grid->EvictBefore(cutoff), n);
      EXPECT_EQ(rtree->EvictBefore(cutoff), n);
    } else {
      double lon = qrng.Uniform(-8.0, 12.0), lat = qrng.Uniform(33.0, 46.0);
      double r = qrng.Uniform(1000.0, 300000.0);
      TimeMs min_t = static_cast<TimeMs>(step - qrng.UniformInt(0, 400));
      auto want = IndexVisit(*scan, lon, lat, r, min_t);
      EXPECT_EQ(IndexVisit(*grid, lon, lat, r, min_t), want) << "step " << step;
      EXPECT_EQ(IndexVisit(*rtree, lon, lat, r, min_t), want)
          << "step " << step;
    }
    EXPECT_EQ(grid->size(), scan->size());
    EXPECT_EQ(rtree->size(), scan->size());
  }
}

TEST(SpatialIndexTest, BulkConstructionMatchesIncremental) {
  Rng rng(17);
  std::vector<IndexPoint> points;
  for (uint64_t i = 0; i < 400; ++i) {
    points.push_back({i, static_cast<TimeMs>(i), rng.Uniform(-6.0, 10.0),
                      rng.Uniform(35.0, 44.0)});
  }
  SpatialIndexConfig config;
  auto bulk = MakeSpatialIndex(SpatialBackend::kRtree, config, points);
  auto incr = MakeSpatialIndex(SpatialBackend::kRtree, config);
  for (const IndexPoint& p : points) incr->Insert(p);
  EXPECT_EQ(bulk->size(), incr->size());
  for (int q = 0; q < 10; ++q) {
    double lon = rng.Uniform(-6.0, 10.0), lat = rng.Uniform(35.0, 44.0);
    double r = rng.Uniform(5000.0, 200000.0);
    EXPECT_EQ(IndexVisit(*bulk, lon, lat, r, 100),
              IndexVisit(*incr, lon, lat, r, 100));
  }
  // Grid and scan factories honour bulk seeding too.
  auto gbulk = MakeSpatialIndex(SpatialBackend::kGrid, config, points);
  EXPECT_EQ(gbulk->size(), points.size());
}

// ---------------------------------------------------------------------

TEST(RtreeConcurrencyTest, ParallelReadersOnBulkLoadedTree) {
  Rng rng(2025);
  std::vector<RtreeItem> items = ClusteredPoints(2000, rng);
  RStarTree tree = RStarTree::BulkLoad(items);

  struct Query {
    double lon, lat, radius;
    std::set<uint64_t> want;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 32; ++i) {
    Query q{rng.Uniform(-6.0, 10.0), rng.Uniform(35.0, 44.0),
            rng.Uniform(5000.0, 100000.0), {}};
    q.want = OracleRadius(items, q.lon, q.lat, q.radius, kTimeMin, kTimeMax);
    queries.push_back(std::move(q));
  }

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      for (int rep = 0; rep < 20; ++rep) {
        const Query& q = queries[(t * 7 + rep) % queries.size()];
        std::set<uint64_t> got;
        tree.WithinRadius(q.lon, q.lat, q.radius,
                          [&](const RtreeItem& it) { got.insert(it.id); });
        if (got != q.want) mismatches.fetch_add(1);
        auto knn = tree.NearestK(q.lon, q.lat, 10);
        if (knn.size() != std::min<size_t>(10, items.size())) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace tcmf::geom
