#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"
#include "common/varint.h"
#include "datagen/areas.h"
#include "datagen/vessel.h"
#include "mlog/codec.h"
#include "mlog/log.h"
#include "mlog/partitioned.h"
#include "mlog/stages.h"
#include "stream/pipeline.h"
#include "stream/record.h"
#include "stream/sharded.h"

namespace tcmf::mlog {
namespace {

namespace fsys = std::filesystem;

/// Fresh per-test log directory under the test working directory (kept
/// inside the build tree; .gitignore covers it).
std::string TestDir(const std::string& name) {
  const std::string dir = "mlog_test_logs/" + name;
  fsys::remove_all(dir);
  return dir;
}

std::unique_ptr<Log> MustOpen(const LogOptions& options) {
  Result<std::unique_ptr<Log>> log = Log::Open(options);
  EXPECT_TRUE(log.ok()) << log.status().ToString();
  return std::move(log).value();
}

stream::Record MakeRecord(int i) {
  stream::Record r;
  r.set_event_time(1000 * i);
  r.Set("seq", static_cast<int64_t>(i));
  r.Set("name", "entity-" + std::to_string(i % 7));
  r.Set("speed", 3.5 * i);
  r.Set("moving", i % 2 == 0);
  return r;
}

stream::Record RandomRecord(Rng& rng) {
  stream::Record r;
  r.set_event_time(rng.UniformInt(-4'000'000'000'000LL, 4'000'000'000'000LL));
  const int64_t n = rng.UniformInt(0, 8);
  for (int64_t i = 0; i < n; ++i) {
    const std::string name = "f" + std::to_string(i);
    switch (rng.UniformInt(0, 5)) {
      case 0:
        r.Set(name, stream::Value{});  // null
        break;
      case 1:
        r.Set(name, rng.UniformInt(std::numeric_limits<int64_t>::min() / 2,
                                   std::numeric_limits<int64_t>::max() / 2));
        break;
      case 2: {
        const double choices[] = {0.0,
                                  -0.0,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity(),
                                  -std::numeric_limits<double>::infinity(),
                                  rng.Gaussian(0.0, 1e9),
                                  1e-300};
        r.Set(name, choices[rng.UniformInt(0, 6)]);
        break;
      }
      case 3: {
        std::string s;
        const int64_t len = rng.UniformInt(0, 64);
        for (int64_t k = 0; k < len; ++k) {
          s.push_back(static_cast<char>(rng.UniformInt(0, 255)));
        }
        r.Set(name, s);
        break;
      }
      case 4:
        r.Set(name, rng.Bernoulli(0.5));
        break;
      case 5:
        r.Set(name, std::string());  // empty string, distinct from null
        break;
    }
  }
  return r;
}

std::vector<stream::Record> ReadAll(Log* log) {
  std::vector<stream::Record> out;
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  while (auto rr = cursor->Next()) out.push_back(std::move(rr->record));
  EXPECT_TRUE(cursor->status().ok()) << cursor->status().ToString();
  return out;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string OnlySegmentPath(const std::string& dir) {
  std::string found;
  for (const auto& e : fsys::directory_iterator(dir)) {
    if (e.path().extension() == ".mseg") {
      EXPECT_TRUE(found.empty()) << "expected a single segment";
      found = e.path().string();
    }
  }
  EXPECT_FALSE(found.empty());
  return found;
}

// ---------------------------------------------------------------- codec

TEST(MlogCodecTest, RoundTripAllValueKinds) {
  stream::Record r;
  r.set_event_time(-123456789);
  r.Set("null", stream::Value{});
  r.Set("empty", std::string());  // "" must stay distinct from null
  r.Set("int_neg", static_cast<int64_t>(-9876543210));
  r.Set("int_min", std::numeric_limits<int64_t>::min());
  r.Set("int_max", std::numeric_limits<int64_t>::max());
  r.Set("nan", std::numeric_limits<double>::quiet_NaN());
  r.Set("inf", std::numeric_limits<double>::infinity());
  r.Set("ninf", -std::numeric_limits<double>::infinity());
  r.Set("nzero", -0.0);
  r.Set("pi", 3.141592653589793);
  r.Set("yes", true);
  r.Set("no", false);
  r.Set("text", std::string("καράβι\0binary", 14));

  std::string payload;
  EncodeRecordPayload(r, &payload);
  stream::Record back;
  ASSERT_TRUE(DecodeRecordPayload(payload, &back));
  EXPECT_EQ(r, back);
  // Null and empty string decode to different variants.
  EXPECT_FALSE(back.GetString("null").has_value());
  EXPECT_EQ(back.GetString("empty").value(), "");
  EXPECT_TRUE(std::isnan(back.GetDouble("nan").value()));
  EXPECT_TRUE(std::signbit(back.GetDouble("nzero").value()));
}

TEST(MlogCodecTest, RoundTripEmptyRecord) {
  stream::Record r;
  std::string payload;
  EncodeRecordPayload(r, &payload);
  stream::Record back;
  back.Set("stale", true);  // must be replaced wholesale
  ASSERT_TRUE(DecodeRecordPayload(payload, &back));
  EXPECT_EQ(r, back);
  EXPECT_EQ(back.size(), 0u);
}

TEST(MlogCodecTest, RandomizedRoundTripProperty) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    const stream::Record r = RandomRecord(rng);
    std::string payload;
    EncodeRecordPayload(r, &payload);
    stream::Record back;
    ASSERT_TRUE(DecodeRecordPayload(payload, &back)) << "trial " << trial;
    EXPECT_EQ(r, back) << "trial " << trial << ": " << r.ToString();
  }
}

TEST(MlogCodecTest, EveryProperPrefixIsRejected) {
  const stream::Record r = MakeRecord(3);
  std::string payload;
  EncodeRecordPayload(r, &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    stream::Record back;
    EXPECT_FALSE(
        DecodeRecordPayload(std::string_view(payload.data(), cut), &back))
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(MlogCodecTest, EventTimeProbe) {
  stream::Record r = MakeRecord(5);
  r.set_event_time(-42);
  std::string payload;
  EncodeRecordPayload(r, &payload);
  TimeMs t = 0;
  ASSERT_TRUE(DecodePayloadEventTime(payload, &t));
  EXPECT_EQ(t, -42);
}

TEST(MlogCodecTest, EntryFramingDetectsEveryBitFlip) {
  std::string entry;
  AppendEntry(&entry, MakeRecord(9));
  EntryView view;
  ASSERT_TRUE(ParseEntry(entry.data(), entry.data() + entry.size(), &view));
  EXPECT_EQ(view.next, entry.data() + entry.size());
  stream::Record back;
  ASSERT_TRUE(DecodeRecordPayload(view.payload, &back));
  EXPECT_EQ(back, MakeRecord(9));

  // Any torn suffix fails.
  for (size_t cut = 0; cut < entry.size(); ++cut) {
    EXPECT_FALSE(ParseEntry(entry.data(), entry.data() + cut, &view))
        << "torn at " << cut;
  }
  // Any single-bit corruption fails (CRC32C guarantees burst < 32 bits).
  for (size_t pos = 0; pos < entry.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = entry;
      bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
      EXPECT_FALSE(ParseEntry(bad.data(), bad.data() + bad.size(), &view))
          << "flip at byte " << pos << " bit " << bit;
    }
  }
}

TEST(MlogCodecTest, VarintAndCrcPrimitives) {
  // Varint round-trip across magnitudes.
  const uint64_t kMagnitudes[] = {0,     1,          127,
                                  128,   16383,      16384,
                                  1ull << 32, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : kMagnitudes) {
    std::string buf;
    AppendVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength64(v));
    uint64_t back = 0;
    const char* end = ParseVarint64(buf.data(), buf.data() + buf.size(), &back);
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(end, buf.data() + buf.size());
    EXPECT_EQ(back, v);
    // Truncated varints are rejected.
    EXPECT_EQ(ParseVarint64(buf.data(), buf.data() + buf.size() - 1, &back),
              nullptr);
  }
  // ZigZag bijection.
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  // CRC32C known-answer test: "123456789" -> 0xE3069283 (RFC 3720 vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32cUnmask(Crc32cMask(0xE3069283u)), 0xE3069283u);
  // Extend is equivalent to a single pass.
  const std::string s = "the quick brown fox jumps over the lazy dog";
  EXPECT_EQ(Crc32cExtend(Crc32c(s.data(), 10), s.data() + 10, s.size() - 10),
            Crc32c(s.data(), s.size()));
}

// ------------------------------------------------------------------ log

TEST(MlogLogTest, AppendReadRoundTrip) {
  LogOptions opt;
  opt.dir = TestDir("round_trip");
  auto log = MustOpen(opt);
  std::vector<stream::Record> originals;
  for (int i = 0; i < 1000; ++i) {
    originals.push_back(MakeRecord(i));
    Result<uint64_t> off = log->Append(originals.back());
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off.value(), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(log->next_offset(), 1000u);
  const std::vector<stream::Record> back = ReadAll(log.get());
  ASSERT_EQ(back.size(), originals.size());
  for (size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], originals[i]);
}

TEST(MlogLogTest, BatchAppendAssignsDenseOffsets) {
  LogOptions opt;
  opt.dir = TestDir("batch");
  auto log = MustOpen(opt);
  std::vector<stream::Record> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(MakeRecord(i));
  Result<uint64_t> first = log->AppendBatch(batch);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 0u);
  Result<uint64_t> second = log->AppendBatch(batch);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 10u);
  EXPECT_EQ(log->next_offset(), 20u);

  std::unique_ptr<Cursor> cursor = log->NewCursor();
  uint64_t expected = 0;
  while (auto rr = cursor->Next()) {
    EXPECT_EQ(rr->offset, expected);
    EXPECT_EQ(rr->record, batch[expected % 10]);
    ++expected;
  }
  EXPECT_EQ(expected, 20u);
}

TEST(MlogLogTest, ReopenContinuesOffsets) {
  LogOptions opt;
  opt.dir = TestDir("reopen");
  {
    auto log = MustOpen(opt);
    for (int i = 0; i < 25; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  }
  auto log = MustOpen(opt);
  EXPECT_EQ(log->next_offset(), 25u);
  EXPECT_EQ(log->metrics().recovered_records, 25u);
  EXPECT_EQ(log->metrics().truncated_bytes, 0u);
  Result<uint64_t> off = log->Append(MakeRecord(25));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), 25u);
  const auto back = ReadAll(log.get());
  ASSERT_EQ(back.size(), 26u);
  for (int i = 0; i < 26; ++i) EXPECT_EQ(back[i], MakeRecord(i));
}

TEST(MlogLogTest, RollsSegmentsAndReadsAcrossThem) {
  LogOptions opt;
  opt.dir = TestDir("roll");
  opt.segment_bytes = 256;  // tiny: force frequent rolls
  auto log = MustOpen(opt);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  EXPECT_GT(log->segment_count(), 3u);
  const auto back = ReadAll(log.get());
  ASSERT_EQ(back.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(back[i], MakeRecord(i));

  // Reopen with multiple sealed segments on disk.
  log.reset();
  log = MustOpen(opt);
  EXPECT_EQ(log->next_offset(), 200u);
  const auto again = ReadAll(log.get());
  ASSERT_EQ(again.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(again[i], MakeRecord(i));
}

TEST(MlogLogTest, SeekByOffset) {
  LogOptions opt;
  opt.dir = TestDir("seek");
  opt.segment_bytes = 512;
  opt.index_interval_bytes = 128;  // exercise the sparse index
  auto log = MustOpen(opt);
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());

  std::unique_ptr<Cursor> cursor = log->NewCursor();
  for (uint64_t target : {0ull, 1ull, 137ull, 255ull, 299ull}) {
    ASSERT_TRUE(cursor->Seek(target).ok());
    auto rr = cursor->Next();
    ASSERT_TRUE(rr.has_value()) << "at " << target;
    EXPECT_EQ(rr->offset, target);
    EXPECT_EQ(rr->record, MakeRecord(static_cast<int>(target)));
  }
  // Past-the-end seeks clamp to end (no records, no error).
  ASSERT_TRUE(cursor->Seek(1000).ok());
  EXPECT_EQ(cursor->offset(), 300u);
  EXPECT_FALSE(cursor->Next().has_value());
  EXPECT_TRUE(cursor->status().ok());
}

TEST(MlogLogTest, SeekToEventTime) {
  LogOptions opt;
  opt.dir = TestDir("seek_time");
  auto log = MustOpen(opt);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(log->Append(MakeRecord(i)).ok());  // event_time = 1000*i
  }
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  ASSERT_TRUE(cursor->SeekToTime(1500).ok());
  auto rr = cursor->Next();
  ASSERT_TRUE(rr.has_value());
  EXPECT_EQ(rr->record.event_time(), 2000);  // first record with t >= 1500
  ASSERT_TRUE(cursor->SeekToTime(-100).ok());
  EXPECT_EQ(cursor->Next()->record.event_time(), 0);
  ASSERT_TRUE(cursor->SeekToTime(1'000'000).ok());
  EXPECT_FALSE(cursor->Next().has_value());  // nothing that late
  EXPECT_TRUE(cursor->status().ok());
}

TEST(MlogLogTest, TailingCursorSeesLaterAppends) {
  LogOptions opt;
  opt.dir = TestDir("tailing");
  auto log = MustOpen(opt);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(cursor->Next().has_value());
  EXPECT_FALSE(cursor->Next().has_value());  // caught up, not an error
  EXPECT_TRUE(cursor->status().ok());
  ASSERT_TRUE(log->Append(MakeRecord(3)).ok());
  auto rr = cursor->Next();
  ASSERT_TRUE(rr.has_value());
  EXPECT_EQ(rr->offset, 3u);
}

TEST(MlogLogTest, NextBatchMatchesRepeatedNext) {
  LogOptions opt;
  opt.dir = TestDir("next_batch_equiv");
  opt.segment_bytes = 512;  // force many segments
  auto log = MustOpen(opt);
  const int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  }
  ASSERT_GT(log->segment_count(), 1u);

  std::unique_ptr<Cursor> one = log->NewCursor();
  std::unique_ptr<Cursor> batched = log->NewCursor();
  std::vector<ReadRecord> expected;
  while (auto rr = one->Next()) expected.push_back(std::move(*rr));
  ASSERT_EQ(expected.size(), static_cast<size_t>(kCount));

  // Varying batch sizes, including ones that straddle segment
  // boundaries, must yield the identical record+offset sequence.
  std::vector<ReadRecord> got;
  std::vector<ReadRecord> chunk;
  size_t want = 1;
  while (true) {
    chunk.clear();
    const size_t n = batched->NextBatch(&chunk, want);
    if (n == 0) break;
    EXPECT_EQ(n, chunk.size());
    EXPECT_LE(n, want);
    for (auto& rr : chunk) got.push_back(std::move(rr));
    want = want * 3 + 1;  // 1, 4, 13, 40, 121, ...
  }
  EXPECT_TRUE(batched->status().ok()) << batched->status().ToString();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].offset, expected[i].offset) << i;
    EXPECT_EQ(got[i].record, expected[i].record) << i;
  }
}

TEST(MlogLogTest, NextBatchCrossesSegmentsInOneCall) {
  LogOptions opt;
  opt.dir = TestDir("next_batch_cross");
  opt.segment_bytes = 256;  // a handful of records per segment
  auto log = MustOpen(opt);
  for (int i = 0; i < 120; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  ASSERT_GT(log->segment_count(), 2u);

  // One call larger than any single segment's record count walks through
  // sealed-segment boundaries and returns everything.
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  std::vector<ReadRecord> all;
  EXPECT_EQ(cursor->NextBatch(&all, 1000), 120u);
  ASSERT_EQ(all.size(), 120u);
  for (int i = 0; i < 120; ++i) {
    EXPECT_EQ(all[i].offset, static_cast<uint64_t>(i));
    EXPECT_EQ(all[i].record, MakeRecord(i));
  }
  // Exhausted: further batch reads return 0 without error (tailing).
  std::vector<ReadRecord> more;
  EXPECT_EQ(cursor->NextBatch(&more, 16), 0u);
  EXPECT_TRUE(cursor->status().ok());
}

TEST(MlogLogTest, NextBatchTailsTheActiveSegment) {
  LogOptions opt;
  opt.dir = TestDir("next_batch_tail");
  auto log = MustOpen(opt);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  std::vector<ReadRecord> out;
  // Asking for more than is committed returns only the committed prefix.
  EXPECT_EQ(cursor->NextBatch(&out, 64), 5u);
  EXPECT_EQ(cursor->NextBatch(&out, 64), 0u);  // caught up, not an error
  EXPECT_TRUE(cursor->status().ok());
  // New appends become visible to the same cursor on the next call.
  for (int i = 5; i < 9; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  EXPECT_EQ(cursor->NextBatch(&out, 64), 4u);
  ASSERT_EQ(out.size(), 9u);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(out[i].record, MakeRecord(i));
  // max_n == 0 is a no-op.
  EXPECT_EQ(cursor->NextBatch(&out, 0), 0u);
  // Amortized read metrics still account every record exactly once.
  EXPECT_EQ(log->metrics().read_records, 9u);
}

TEST(MlogLogTest, RetentionDropsOldSegmentsAndAdvancesStart) {
  LogOptions opt;
  opt.dir = TestDir("retention");
  opt.segment_bytes = 256;
  opt.retention_segments = 3;
  auto log = MustOpen(opt);
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  EXPECT_LE(log->segment_count(), 3u);
  EXPECT_GT(log->start_offset(), 0u);
  EXPECT_GT(log->metrics().segments_deleted, 0u);

  // Seeking below the horizon clamps to the oldest retained record.
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  ASSERT_TRUE(cursor->Seek(0).ok());
  auto rr = cursor->Next();
  ASSERT_TRUE(rr.has_value());
  EXPECT_EQ(rr->offset, log->start_offset());
  EXPECT_EQ(rr->record, MakeRecord(static_cast<int>(rr->offset)));
  // And everything from the horizon to the end is intact.
  uint64_t expected = rr->offset + 1;
  while (auto next = cursor->Next()) {
    EXPECT_EQ(next->offset, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 400u);
}

TEST(MlogLogTest, FsyncPolicyCountsSyncs) {
  {
    LogOptions opt;
    opt.dir = TestDir("fsync_never");
    opt.fsync_policy = FsyncPolicy::kNever;
    auto log = MustOpen(opt);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
    EXPECT_EQ(log->metrics().fsyncs, 0u);
  }
  {
    LogOptions opt;
    opt.dir = TestDir("fsync_batch");
    opt.fsync_policy = FsyncPolicy::kPerBatch;
    auto log = MustOpen(opt);
    std::vector<stream::Record> batch;
    for (int i = 0; i < 5; ++i) batch.push_back(MakeRecord(i));
    ASSERT_TRUE(log->AppendBatch(batch).ok());
    // One for the segment-header create, one for the batch.
    EXPECT_EQ(log->metrics().fsyncs, 2u);
  }
  {
    LogOptions opt;
    opt.dir = TestDir("fsync_append");
    opt.fsync_policy = FsyncPolicy::kPerAppend;
    auto log = MustOpen(opt);
    std::vector<stream::Record> batch;
    for (int i = 0; i < 5; ++i) batch.push_back(MakeRecord(i));
    ASSERT_TRUE(log->AppendBatch(batch).ok());
    // One per record plus the segment-header create.
    EXPECT_EQ(log->metrics().fsyncs, 6u);
  }
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kNever), "never");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kPerBatch), "per_batch");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kPerAppend), "per_append");
}

TEST(MlogLogTest, EmptyLogBehaves) {
  LogOptions opt;
  opt.dir = TestDir("empty");
  auto log = MustOpen(opt);
  EXPECT_EQ(log->start_offset(), 0u);
  EXPECT_EQ(log->next_offset(), 0u);
  EXPECT_EQ(log->segment_count(), 1u);
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  EXPECT_FALSE(cursor->Next().has_value());
  EXPECT_TRUE(cursor->status().ok());
}

// ------------------------------------------------------------- recovery

/// Shared fixture data for the fault-injection sweeps: a 5-record log in
/// one segment, with the byte range of the last entry known exactly.
struct TailFixture {
  LogOptions opt;
  std::string segment_path;
  std::string pristine;        ///< full segment file bytes
  uint64_t last_entry_start;   ///< file pos where the last entry begins
  std::vector<stream::Record> originals;
};

TailFixture BuildTailFixture(const std::string& name) {
  TailFixture fx;
  fx.opt.dir = TestDir(name);
  auto log = MustOpen(fx.opt);
  for (int i = 0; i < 5; ++i) {
    fx.originals.push_back(MakeRecord(i));
    EXPECT_TRUE(log->Append(fx.originals.back()).ok());
    if (i == 3) fx.last_entry_start = log->size_bytes();
  }
  log.reset();  // close fds; page cache keeps the bytes
  fx.segment_path = OnlySegmentPath(fx.opt.dir);
  fx.pristine = ReadFileBytes(fx.segment_path);
  EXPECT_GT(fx.pristine.size(), fx.last_entry_start);
  return fx;
}

/// After damaging the tail, recovery must keep exactly the first 4
/// records, appends must continue at offset 4, and the re-appended log
/// must read back intact.
void ExpectRecoversPrefix(const TailFixture& fx, uint64_t expect_truncated) {
  auto log = MustOpen(fx.opt);
  EXPECT_EQ(log->next_offset(), 4u);
  EXPECT_EQ(log->metrics().recovered_records, 4u);
  EXPECT_EQ(log->metrics().truncated_bytes, expect_truncated);

  Result<uint64_t> off = log->Append(MakeRecord(100));
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value(), 4u);  // no gap, no duplicate

  const auto back = ReadAll(log.get());
  ASSERT_EQ(back.size(), 5u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], fx.originals[i]);
  EXPECT_EQ(back[4], MakeRecord(100));
}

TEST(MlogRecoveryTest, TornTailEveryTruncationPoint) {
  const TailFixture fx = BuildTailFixture("torn_tail");
  for (uint64_t cut = fx.last_entry_start; cut < fx.pristine.size(); ++cut) {
    SCOPED_TRACE("truncated at byte " + std::to_string(cut));
    WriteFileBytes(fx.segment_path, fx.pristine.substr(0, cut));
    ExpectRecoversPrefix(fx, cut - fx.last_entry_start);
  }
  // Restoring the pristine bytes recovers all 5 records.
  WriteFileBytes(fx.segment_path, fx.pristine);
  auto log = MustOpen(fx.opt);
  EXPECT_EQ(log->next_offset(), 5u);
  EXPECT_EQ(log->metrics().truncated_bytes, 0u);
}

TEST(MlogRecoveryTest, BitFlipAtEveryByteOfLastEntry) {
  const TailFixture fx = BuildTailFixture("bit_flip");
  for (uint64_t pos = fx.last_entry_start; pos < fx.pristine.size(); ++pos) {
    SCOPED_TRACE("bit flip at byte " + std::to_string(pos));
    std::string damaged = fx.pristine;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x20);
    WriteFileBytes(fx.segment_path, damaged);
    // The whole last entry is cut, whichever of its bytes was damaged.
    ExpectRecoversPrefix(fx, fx.pristine.size() - fx.last_entry_start);
  }
}

TEST(MlogRecoveryTest, TornHeaderResetsSegment) {
  LogOptions opt;
  opt.dir = TestDir("torn_header");
  { auto log = MustOpen(opt); }
  const std::string path = OnlySegmentPath(opt.dir);
  const std::string pristine = ReadFileBytes(path);
  ASSERT_EQ(pristine.size(), 16u);
  WriteFileBytes(path, pristine.substr(0, 7));  // torn mid-header

  auto log = MustOpen(opt);
  EXPECT_EQ(log->next_offset(), 0u);
  EXPECT_EQ(log->metrics().truncated_bytes, 7u);
  ASSERT_TRUE(log->Append(MakeRecord(0)).ok());
  EXPECT_EQ(ReadAll(log.get()).size(), 1u);
}

TEST(MlogRecoveryTest, RecoveryOnlyTouchesTailSegment) {
  LogOptions opt;
  opt.dir = TestDir("tail_only");
  opt.segment_bytes = 256;
  {
    auto log = MustOpen(opt);
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
    ASSERT_GT(log->segment_count(), 2u);
  }
  // Chop the final segment file mid-entry; everything in sealed segments
  // plus the tail's intact prefix must survive.
  std::vector<std::string> segs;
  for (const auto& e : fsys::directory_iterator(opt.dir)) {
    if (e.path().extension() == ".mseg") segs.push_back(e.path().string());
  }
  std::sort(segs.begin(), segs.end());
  const std::string tail = segs.back();
  const std::string bytes = ReadFileBytes(tail);
  ASSERT_GT(bytes.size(), 20u);
  WriteFileBytes(tail, bytes.substr(0, bytes.size() - 3));

  auto log = MustOpen(opt);
  const uint64_t n = log->next_offset();
  EXPECT_LT(n, 100u);
  EXPECT_GT(n, 50u);  // only tail-segment records were at risk
  const auto back = ReadAll(log.get());
  ASSERT_EQ(back.size(), n);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(back[i], MakeRecord(static_cast<int>(i)));
  }
}

TEST(MlogRecoveryTest, CursorSurfacesMidLogCorruption) {
  LogOptions opt;
  opt.dir = TestDir("mid_log");
  {
    auto log = MustOpen(opt);
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());
  }
  // Damage an entry in the *middle* (not the tail): recovery keeps the
  // prefix; the cursor must stop with a sticky error, not skip or crash.
  const std::string path = OnlySegmentPath(opt.dir);
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xff);
  WriteFileBytes(path, bytes);

  auto log = MustOpen(opt);
  EXPECT_LT(log->next_offset(), 20u);  // suffix truncated from the bad entry
  std::unique_ptr<Cursor> cursor = log->NewCursor();
  uint64_t n = 0;
  while (cursor->Next()) ++n;
  EXPECT_EQ(n, log->next_offset());
  EXPECT_TRUE(cursor->status().ok());
}

// ---------------------------------------------------------- concurrency

TEST(MlogConcurrencyTest, WriterAndManyCursorReaders) {
  LogOptions opt;
  opt.dir = TestDir("concurrent");
  opt.segment_bytes = 8 * 1024;  // several rolls while readers tail
  auto log = MustOpen(opt);

  constexpr int kRecords = 2000;
  constexpr int kReaders = 4;
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    std::vector<stream::Record> batch;
    for (int i = 0; i < kRecords; ++i) {
      batch.push_back(MakeRecord(i));
      if (batch.size() == 16 || i + 1 == kRecords) {
        ASSERT_TRUE(log->AppendBatch(batch).ok());
        batch.clear();
      }
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::vector<uint64_t> read_counts(kReaders, 0);
  std::vector<bool> read_ok(kReaders, true);
  for (int w = 0; w < kReaders; ++w) {
    readers.emplace_back([&, w] {
      std::unique_ptr<Cursor> cursor = log->NewCursor();
      uint64_t expected = 0;
      while (expected < kRecords) {
        auto rr = cursor->Next();
        if (!rr.has_value()) {
          if (!cursor->status().ok()) {
            read_ok[w] = false;
            return;
          }
          if (writer_done.load(std::memory_order_acquire) &&
              log->next_offset() <= expected) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
        if (rr->offset != expected ||
            rr->record != MakeRecord(static_cast<int>(expected))) {
          read_ok[w] = false;
          return;
        }
        ++expected;
      }
      read_counts[w] = expected;
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  for (int w = 0; w < kReaders; ++w) {
    EXPECT_TRUE(read_ok[w]) << "reader " << w;
    EXPECT_EQ(read_counts[w], static_cast<uint64_t>(kRecords))
        << "reader " << w;
  }
  EXPECT_EQ(log->metrics().read_records,
            static_cast<uint64_t>(kRecords) * kReaders);
}

// ------------------------------------------------- dataflow integration

TEST(MlogStagesIntegrationTest, CaptureThenReplayVesselStreamIsIdentical) {
  // Simulate an AIS vessel stream, capture it through LogSink, then
  // replay it from a *freshly reopened* log and demand record equality —
  // fields, order and event time (the paper's Kafka replay semantics).
  datagen::VesselSimConfig config;
  config.vessel_count = 5;
  config.duration_ms = 30 * kMillisPerMinute;
  config.report_interval_ms = 30 * kMillisPerSecond;
  config.gap_probability = 0.0;
  Rng rng(11);
  auto ports = datagen::MakePorts(rng, config.extent, 6);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  const datagen::VesselSimOutput data = sim.Run();
  ASSERT_GT(data.stream.size(), 100u);

  std::vector<stream::Record> expected;
  for (const Position& p : data.stream) {
    expected.push_back(stream::PositionToRecord(p));
  }

  LogOptions opt;
  opt.dir = TestDir("capture_replay");
  opt.segment_bytes = 32 * 1024;
  opt.fsync_policy = FsyncPolicy::kPerBatch;
  {
    auto log = MustOpen(opt);
    stream::Pipeline capture;
    auto flow = stream::Flow<Position>::FromVector(&capture, data.stream)
                    .Map<stream::Record>(
                        [](const Position& p) {
                          return stream::PositionToRecord(p);
                        });
    LogSink(flow, log.get(),
            {.batch = stream::BatchPolicy::Batched(/*max_batch=*/64)});
    capture.Run();
    EXPECT_EQ(log->next_offset(), expected.size());
    EXPECT_GT(log->metrics().appended_bytes, 0u);
    EXPECT_GT(log->metrics().fsyncs, 0u);
    // The sink registered itself with the pipeline's metrics report.
    const std::string json = capture.ReportJson();
    EXPECT_NE(json.find("mlog.sink"), std::string::npos);
    EXPECT_NE(json.find("\"io_syncs\":"), std::string::npos);
  }

  auto log = MustOpen(opt);  // reopen: replay must survive process death
  stream::Pipeline replay;
  std::vector<stream::Record> replayed;
  LogSource(&replay, log.get()).CollectInto(&replayed);
  replay.Run();

  ASSERT_EQ(replayed.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(replayed[i], expected[i]) << "at " << i;
    EXPECT_EQ(replayed[i].event_time(), expected[i].event_time());
  }
}

TEST(MlogStagesIntegrationTest, LogSourceReplaysOffsetAndTimeRanges) {
  LogOptions opt;
  opt.dir = TestDir("source_ranges");
  auto log = MustOpen(opt);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());

  {
    stream::Pipeline p;
    std::vector<stream::Record> got;
    LogSourceOptions so;
    so.start_offset = 10;
    so.end_offset = 20;
    LogSource(&p, log.get(), so).CollectInto(&got);
    p.Run();
    ASSERT_EQ(got.size(), 10u);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], MakeRecord(10 + i));
  }
  {
    stream::Pipeline p;
    std::vector<stream::Record> got;
    LogSourceOptions so;
    so.start_time = 40'000;  // event_time of record 40
    LogSource(&p, log.get(), so).CollectInto(&got);
    p.Run();
    ASSERT_EQ(got.size(), 10u);
    EXPECT_EQ(got.front(), MakeRecord(40));
  }
}

TEST(MlogStagesIntegrationTest, MultiConsumerFanOutFromOneLog) {
  LogOptions opt;
  opt.dir = TestDir("fan_out");
  auto log = MustOpen(opt);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());

  // Two independent replay consumers in one pipeline, each with its own
  // cursor — the multi-consumer semantics channels alone cannot offer.
  stream::Pipeline p;
  std::vector<stream::Record> a, b;
  LogSourceOptions sa;
  sa.stage.name = "replay.a";
  LogSourceOptions sb;
  sb.stage.name = "replay.b";
  LogSource(&p, log.get(), sa).CollectInto(&a);
  LogSource(&p, log.get(), sb).CollectInto(&b);
  p.Run();
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a[i], MakeRecord(i));
    EXPECT_EQ(b[i], MakeRecord(i));
  }
}

// ------------------------------------------------- durable error paths

TEST(MlogStagesErrorTest, LogSinkSurfacesMidStreamAppendFailure) {
  LogOptions opt;
  opt.dir = TestDir("sink_mid_fault");
  auto log = MustOpen(opt);
  log->SetAppendFault(Status::IoError("injected: disk full"));

  std::vector<stream::Record> input;
  for (int i = 0; i < 100; ++i) input.push_back(MakeRecord(i));
  stream::Pipeline p;
  auto flow = stream::Flow<stream::Record>::FromVector(&p, input);
  // Small batches: the failure hits a full mid-stream batch, which must
  // record the sticky error *and* cancel upstream.
  LogSink(flow, log.get(), {.batch = stream::BatchPolicy::Batched(4)});
  p.Run();

  EXPECT_EQ(log->next_offset(), 0u);
  const std::string json = p.ReportJson();
  EXPECT_NE(json.find("mlog.sink"), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"IoError: injected: disk full\""),
            std::string::npos)
      << json;
}

TEST(MlogStagesErrorTest, LogSinkSurfacesFinalBatchAppendFailure) {
  LogOptions opt;
  opt.dir = TestDir("sink_tail_fault");
  auto log = MustOpen(opt);
  log->SetAppendFault(Status::IoError("injected: tail append failed"));

  // 10 records under a batch size of 64: nothing is appended mid-stream;
  // the only append is the final partial-batch flush at EOS. Before the
  // fix its Status was discarded — the pipeline reported success while
  // every record of the stream was lost.
  std::vector<stream::Record> input;
  for (int i = 0; i < 10; ++i) input.push_back(MakeRecord(i));
  stream::Pipeline p;
  auto flow = stream::Flow<stream::Record>::FromVector(&p, input);
  LogSink(flow, log.get(), {.batch = stream::BatchPolicy::Batched(64)});
  p.Run();

  EXPECT_EQ(log->next_offset(), 0u);  // the data really was lost...
  const std::string json = p.ReportJson();
  EXPECT_NE(json.find("\"error\":\"IoError: injected: tail append failed\""),
            std::string::npos)  // ...and the report must say so
      << json;

  // Control: with the fault cleared the same stream persists cleanly and
  // the report carries no error field.
  log->SetAppendFault(Status::Ok());
  stream::Pipeline p2;
  auto flow2 = stream::Flow<stream::Record>::FromVector(&p2, input);
  LogSink(flow2, log.get(), {.batch = stream::BatchPolicy::Batched(64)});
  p2.Run();
  EXPECT_EQ(log->next_offset(), 10u);
  EXPECT_EQ(p2.ReportJson().find("\"error\":"), std::string::npos);
}

TEST(MlogStagesErrorTest, LogSourceSurfacesCorruptSeek) {
  LogOptions opt;
  opt.dir = TestDir("source_seek_fault");
  opt.index_interval_bytes = 1u << 30;  // no index: seeks scan every header
  auto log = MustOpen(opt);
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(log->Append(MakeRecord(i)).ok());

  // Damage a wide mid-file range while the log is open (the committed
  // watermark already covers it): a forward seek must walk over the
  // damage and fail, not land somewhere arbitrary and replay from there.
  const std::string path = OnlySegmentPath(opt.dir);
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 600u);
  for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 150; ++i) {
    bytes[i] = static_cast<char>(0xff);
  }
  WriteFileBytes(path, bytes);

  {
    stream::Pipeline p;
    std::vector<stream::Record> got;
    LogSourceOptions so;
    so.start_offset = 190;  // beyond the damaged region
    LogSource(&p, log.get(), so).CollectInto(&got);
    p.Run();
    EXPECT_TRUE(got.empty());  // empty flow, not a wrong-position replay
    const std::string json = p.ReportJson();
    EXPECT_NE(json.find("mlog.source.log"), std::string::npos);
    EXPECT_NE(json.find("corrupt entry during seek"), std::string::npos)
        << json;
  }
  {
    // Time seeks scan payloads from the start and must fail the same way.
    stream::Pipeline p;
    std::vector<stream::Record> got;
    LogSourceOptions so;
    so.start_time = 190'000;
    LogSource(&p, log.get(), so).CollectInto(&got);
    p.Run();
    EXPECT_TRUE(got.empty());
    EXPECT_NE(p.ReportJson().find("\"error\":\""), std::string::npos);
  }
}

// ------------------------------------------------------------ partitioned

std::unique_ptr<PartitionedLog> MustOpenTopic(
    const PartitionedLogOptions& options) {
  Result<std::unique_ptr<PartitionedLog>> topic =
      PartitionedLog::Open(options);
  EXPECT_TRUE(topic.ok()) << topic.status().ToString();
  return std::move(topic).value();
}

TEST(MlogPartitionedTest, KeyedRoutingPreservesPerKeyOrder) {
  PartitionedLogOptions po;
  po.dir = TestDir("topic_round_trip");
  po.partitions = 4;
  auto topic = MustOpenTopic(po);
  ASSERT_EQ(topic->partition_count(), 4u);

  for (int i = 0; i < 400; ++i) {
    const uint64_t key = static_cast<uint64_t>(i % 37);
    ASSERT_TRUE(topic->AppendKeyed(key, MakeRecord(i)).ok());
  }
  EXPECT_EQ(topic->next_offset_total(), 400u);

  size_t total = 0;
  std::map<uint64_t, int64_t> last_seq;  // per-key order across the topic
  for (size_t p = 0; p < topic->partition_count(); ++p) {
    const auto records = ReadAll(topic->partition(p));
    EXPECT_GT(records.size(), 0u) << "partition " << p << " unused";
    for (const stream::Record& r : records) {
      const int64_t seq = r.GetInt("seq").value();
      const uint64_t key = static_cast<uint64_t>(seq % 37);
      // Routing is the topic's hash, nothing else.
      EXPECT_EQ(topic->PartitionFor(key), p);
      auto it = last_seq.find(key);
      if (it != last_seq.end()) {
        EXPECT_GT(seq, it->second);
      }
      last_seq[key] = seq;
      ++total;
    }
  }
  EXPECT_EQ(total, 400u);
}

TEST(MlogPartitionedTest, ReopenInfersPartitionCountAndRejectsMismatch) {
  PartitionedLogOptions po;
  po.dir = TestDir("topic_reopen");
  po.partitions = 4;
  {
    auto topic = MustOpenTopic(po);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          topic->AppendKeyed(static_cast<uint64_t>(i), MakeRecord(i)).ok());
    }
  }
  // partitions = 0 infers the on-disk layout.
  PartitionedLogOptions infer = po;
  infer.partitions = 0;
  auto topic = MustOpenTopic(infer);
  EXPECT_EQ(topic->partition_count(), 4u);
  EXPECT_EQ(topic->next_offset_total(), 40u);
  topic.reset();

  // A different explicit count would rehash keys across partitions:
  // refused, not silently accepted.
  PartitionedLogOptions wrong = po;
  wrong.partitions = 6;
  Result<std::unique_ptr<PartitionedLog>> bad = PartitionedLog::Open(wrong);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MlogPartitionedTest, PartitionsRecoverTornTailsIndependently) {
  PartitionedLogOptions po;
  po.dir = TestDir("topic_torn_tails");
  po.partitions = 3;
  std::vector<std::vector<stream::Record>> expected(3);
  {
    auto topic = MustOpenTopic(po);
    for (int i = 0; i < 90; ++i) {
      ASSERT_TRUE(
          topic->AppendKeyed(static_cast<uint64_t>(i), MakeRecord(i)).ok());
    }
    for (size_t p = 0; p < 3; ++p) {
      expected[p] = ReadAll(topic->partition(p));
      ASSERT_GT(expected[p].size(), 2u);
    }
  }
  // Tear the tails of partitions 0 and 2 (cut mid-entry); leave 1 alone.
  for (const size_t p : {0u, 2u}) {
    const std::string seg = OnlySegmentPath(po.dir + "/p" + std::to_string(p));
    const std::string bytes = ReadFileBytes(seg);
    WriteFileBytes(seg, bytes.substr(0, bytes.size() - 3));
  }

  auto topic = MustOpenTopic(po);
  for (const size_t p : {0u, 2u}) {
    // The damaged partitions each lost exactly their torn last record.
    const auto back = ReadAll(topic->partition(p));
    ASSERT_EQ(back.size(), expected[p].size() - 1) << "partition " << p;
    for (size_t i = 0; i < back.size(); ++i) {
      EXPECT_EQ(back[i], expected[p][i]);
    }
    EXPECT_GT(topic->partition(p)->metrics().truncated_bytes, 0u);
  }
  // The intact partition is untouched by its siblings' recovery.
  const auto back = ReadAll(topic->partition(1));
  ASSERT_EQ(back.size(), expected[1].size());
  for (size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], expected[1][i]);
  EXPECT_EQ(topic->partition(1)->metrics().truncated_bytes, 0u);
}

TEST(MlogGroupCursorTest, RebalanceDeliversEveryRecordExactlyOnce) {
  PartitionedLogOptions po;
  po.dir = TestDir("group_rebalance");
  po.partitions = 4;
  auto topic = MustOpenTopic(po);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        topic->AppendKeyed(static_cast<uint64_t>(i), MakeRecord(i)).ok());
  }

  // Phase 1: a single member owns all four partitions and consumes part
  // of the topic.
  Result<std::unique_ptr<GroupCursor>> join = topic->JoinGroup("g", 0, 1);
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  std::unique_ptr<GroupCursor> a = std::move(join).value();
  ASSERT_EQ(a->assignment().size(), 4u);

  std::set<std::pair<size_t, uint64_t>> seen;  // (partition, offset)
  for (int i = 0; i < 70; ++i) {
    std::optional<GroupRecord> r = a->Next();
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(seen.insert({r->partition, r->offset}).second)
        << "double-read before rebalance";
  }
  EXPECT_GT(a->Frontier().lag, 0u);

  // Phase 2: the group grows to two members. Both re-derive their
  // assignment; reads resume from the shared committed watermarks.
  ASSERT_TRUE(a->Rebalance(0, 2).ok());
  Result<std::unique_ptr<GroupCursor>> join_b = topic->JoinGroup("g", 1, 2);
  ASSERT_TRUE(join_b.ok());
  std::unique_ptr<GroupCursor> b = std::move(join_b).value();
  EXPECT_EQ(a->assignment(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(b->assignment(), (std::vector<size_t>{1, 3}));

  std::vector<GroupRecord> batch;
  while (a->NextBatch(&batch, 16) > 0 || b->NextBatch(&batch, 16) > 0) {
    for (GroupRecord& r : batch) {
      EXPECT_TRUE(seen.insert({r.partition, r.offset}).second)
          << "double-read across rebalance at p" << r.partition << " off "
          << r.offset;
    }
    batch.clear();
  }
  EXPECT_TRUE(a->status().ok());
  EXPECT_TRUE(b->status().ok());

  // Exactly-once: every appended record was seen exactly one time.
  size_t total_appended = 0;
  for (size_t p = 0; p < topic->partition_count(); ++p) {
    for (uint64_t o = 0; o < topic->partition(p)->next_offset(); ++o) {
      EXPECT_TRUE(seen.count({p, o})) << "lost p" << p << " off " << o;
    }
    total_appended += topic->partition(p)->next_offset();
  }
  EXPECT_EQ(seen.size(), total_appended);
  EXPECT_EQ(total_appended, 200u);

  // The merged frontier reports the group fully caught up.
  const GroupFrontier f = a->Frontier();
  EXPECT_EQ(f.committed_total, 200u);
  EXPECT_EQ(f.end_total, 200u);
  EXPECT_EQ(f.lag, 0u);
  EXPECT_NE(f.ToJson().find("\"lag\":0"), std::string::npos);

  // Groups are independent: a fresh group replays from the start.
  Result<std::unique_ptr<GroupCursor>> fresh = topic->JoinGroup("h", 0, 1);
  ASSERT_TRUE(fresh.ok());
  size_t replayed = 0;
  while (fresh.value()->NextBatch(&batch, 64) > 0) {
    replayed += batch.size();
    batch.clear();
  }
  EXPECT_EQ(replayed, 200u);

  // Invalid memberships are refused.
  EXPECT_FALSE(topic->JoinGroup("g", 3, 2).ok());
  EXPECT_FALSE(a->Rebalance(0, 0).ok());
}

TEST(MlogLogTest, SetSyncDelayStallsAppendsAndCountsThem) {
  LogOptions opt;
  opt.dir = TestDir("sync_delay");
  auto log = MustOpen(opt);

  ASSERT_TRUE(log->Append(MakeRecord(0)).ok());
  EXPECT_EQ(log->metrics().sync_stalls, 0u);  // disarmed by default

  log->SetSyncDelay(20);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(log->Append(MakeRecord(1)).ok());
  const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(stalled, 20);
  EXPECT_EQ(log->metrics().sync_stalls, 1u);

  log->SetSyncDelay(0);  // disarm: appends run full speed again
  ASSERT_TRUE(log->Append(MakeRecord(2)).ok());
  EXPECT_EQ(log->metrics().sync_stalls, 1u);
  EXPECT_NE(log->metrics().ToJson().find("\"sync_stalls\":1"),
            std::string::npos);

  // The stall injects latency, never corruption: everything reads back.
  EXPECT_EQ(ReadAll(log.get()).size(), 3u);
}

TEST(MlogGroupCursorTest, CloseAndRejoinMidTailResumesAtWatermark) {
  PartitionedLogOptions po;
  po.dir = TestDir("group_resume");
  po.partitions = 3;
  auto topic = MustOpenTopic(po);

  // A live writer keeps the topic growing while the consumer tails it,
  // so the close/rejoin happens genuinely mid-stream.
  constexpr int kTotal = 600;
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (int i = 0; i < kTotal; ++i) {
      ASSERT_TRUE(
          topic->AppendKeyed(static_cast<uint64_t>(i % 53), MakeRecord(i)).ok());
      if (i % 40 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    writer_done.store(true, std::memory_order_release);
  });

  // One member owns all partitions; its committed watermarks are the
  // group's durable position, so dropping the cursor loses nothing.
  std::vector<uint64_t> next_expected(po.partitions, 0);
  size_t consumed = 0;
  size_t rejoins = 0;
  std::vector<GroupRecord> batch;
  std::unique_ptr<GroupCursor> cursor;
  while (true) {
    if (!cursor) {
      Result<std::unique_ptr<GroupCursor>> join =
          topic->JoinGroup("g", 0, 1);
      ASSERT_TRUE(join.ok()) << join.status().ToString();
      cursor = std::move(join).value();
      // Rejoin resumes exactly at the committed watermark of every
      // partition — nothing re-read, nothing skipped.
      for (size_t p = 0; p < po.partitions; ++p) {
        EXPECT_EQ(cursor->committed(p), next_expected[p]) << "p" << p;
      }
    }
    batch.clear();
    const size_t n = cursor->NextBatch(&batch, 32);
    ASSERT_TRUE(cursor->status().ok()) << cursor->status().ToString();
    for (const GroupRecord& r : batch) {
      // Offsets are dense per partition: any gap or duplicate across the
      // restart would break the equality.
      EXPECT_EQ(r.offset, next_expected[r.partition])
          << "p" << r.partition << " after " << rejoins << " rejoins";
      next_expected[r.partition] = r.offset + 1;
      ++consumed;
    }
    // Tear the consumer down mid-tail a couple of times.
    if (rejoins < 2 && consumed >= (rejoins + 1) * (kTotal / 4)) {
      cursor.reset();
      ++rejoins;
      continue;
    }
    if (n == 0) {
      if (writer_done.load(std::memory_order_acquire) &&
          cursor->Frontier().lag == 0) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  writer.join();
  EXPECT_EQ(rejoins, 2u);
  EXPECT_EQ(consumed, static_cast<size_t>(kTotal));

  uint64_t committed_total = 0;
  for (size_t p = 0; p < po.partitions; ++p) {
    EXPECT_EQ(next_expected[p], topic->partition(p)->next_offset());
    committed_total += next_expected[p];
  }
  EXPECT_EQ(committed_total, static_cast<uint64_t>(kTotal));
}

TEST(MlogPartitionedTest, ShardedPipelineReplaysTopicWithMergedReport) {
  PartitionedLogOptions po;
  po.dir = TestDir("topic_sharded");
  po.partitions = 4;
  auto topic = MustOpenTopic(po);

  // Capture: one pipeline persists a keyed stream through the
  // partitioned sink (producer-side hash routing).
  std::vector<stream::Record> input;
  for (int i = 0; i < 500; ++i) input.push_back(MakeRecord(i));
  auto key_fn = [](const stream::Record& r) {
    return static_cast<uint64_t>(r.GetInt("seq").value() % 91);
  };
  {
    stream::Pipeline capture;
    auto flow = stream::Flow<stream::Record>::FromVector(&capture, input);
    PartitionedLogSink(flow, topic.get(), key_fn);
    capture.Run();
    EXPECT_EQ(topic->next_offset_total(), input.size());
    EXPECT_NE(capture.ReportJson().find("mlog.psink"), std::string::npos);
  }

  // Scale-out replay: one pipeline instance per partition behind the
  // ShardedPipeline facade, shard index = partition index.
  stream::ShardedPipeline sp(topic->partition_count());
  std::vector<std::vector<stream::Record>> outs(sp.shard_count());
  sp.Build([&](stream::Pipeline* p, size_t shard) {
    PartitionedLogSource(p, topic.get(), shard).CollectInto(&outs[shard]);
  });
  sp.Run();

  // Same multiset as the input, and per-key order preserved within the
  // owning shard (a key never crosses partitions).
  std::vector<int64_t> seqs;
  for (size_t s = 0; s < outs.size(); ++s) {
    std::map<uint64_t, int64_t> last_seq;
    for (const stream::Record& r : outs[s]) {
      const int64_t seq = r.GetInt("seq").value();
      const uint64_t key = static_cast<uint64_t>(seq % 91);
      EXPECT_EQ(topic->PartitionFor(key), s);
      auto it = last_seq.find(key);
      if (it != last_seq.end()) {
        EXPECT_GT(seq, it->second);
      }
      last_seq[key] = seq;
      seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());
  ASSERT_EQ(seqs.size(), input.size());
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<int64_t>(i));
  }

  // The merged report exposes the shard count, the per-stage aggregate
  // and the per-shard breakdown.
  const std::string json = sp.ReportJson();
  EXPECT_NE(json.find("\"shards\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"aggregate\":["), std::string::npos);
  EXPECT_NE(json.find("\"per_shard\":["), std::string::npos);
  EXPECT_NE(json.find("\"shard\":3"), std::string::npos);
  EXPECT_NE(json.find("mlog.source.log"), std::string::npos);
  // The aggregate "mlog.source.log" row sums the partition replay
  // counters back to the full topic size.
  bool found = false;
  for (const stream::StageMetrics& m : sp.AggregateReport()) {
    if (m.stage != "mlog.source.log") continue;
    found = true;
    EXPECT_EQ(m.records_in, input.size());   // appends (whole topic)
    EXPECT_EQ(m.records_out, input.size());  // cursor reads
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace tcmf::mlog
