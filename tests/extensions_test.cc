#include <gtest/gtest.h>

#include <cmath>

#include "cep/automaton.h"
#include "cep/mining.h"
#include "common/rng.h"
#include "common/stats.h"
#include "geom/geo.h"
#include "insitu/crossstream.h"
#include "prediction/cpa.h"
#include "prediction/kinetic.h"

namespace tcmf {
namespace {

Position MakePos(uint64_t id, TimeMs t, double lon, double lat,
                 double speed = 5.0, double heading = 90.0) {
  Position p;
  p.entity_id = id;
  p.t = t;
  p.lon = lon;
  p.lat = lat;
  p.speed_mps = speed;
  p.heading_deg = heading;
  return p;
}

// ------------------------------------------------------------------- CPA

TEST(CpaTest, HeadOnCollisionCourse) {
  // a eastbound, b westbound, 10 km apart on the same latitude.
  Position a = MakePos(1, 0, 5.0, 40.0, 5.0, 90.0);
  geom::LonLat bloc = geom::Destination({5.0, 40.0}, 90.0, 10000.0);
  Position b = MakePos(2, 0, bloc.lon, bloc.lat, 5.0, 270.0);
  prediction::CpaResult cpa = prediction::ComputeCpa(a, b);
  EXPECT_NEAR(cpa.distance_now_m, 10000.0, 50.0);
  EXPECT_NEAR(cpa.tcpa_s, 1000.0, 20.0);  // closing at 10 m/s
  EXPECT_LT(cpa.dcpa_m, 100.0);
}

TEST(CpaTest, ParallelCoursesKeepSeparation) {
  Position a = MakePos(1, 0, 5.0, 40.0, 5.0, 0.0);
  geom::LonLat bloc = geom::Destination({5.0, 40.0}, 90.0, 3000.0);
  Position b = MakePos(2, 0, bloc.lon, bloc.lat, 5.0, 0.0);
  prediction::CpaResult cpa = prediction::ComputeCpa(a, b);
  EXPECT_NEAR(cpa.dcpa_m, 3000.0, 50.0);
}

TEST(CpaTest, DivergingReportsNowAsClosest) {
  // b directly ahead of a but moving away faster.
  Position a = MakePos(1, 0, 5.0, 40.0, 5.0, 90.0);
  geom::LonLat bloc = geom::Destination({5.0, 40.0}, 90.0, 2000.0);
  Position b = MakePos(2, 0, bloc.lon, bloc.lat, 10.0, 90.0);
  prediction::CpaResult cpa = prediction::ComputeCpa(a, b);
  EXPECT_DOUBLE_EQ(cpa.tcpa_s, 0.0);
  EXPECT_NEAR(cpa.dcpa_m, cpa.distance_now_m, 1.0);
}

TEST(CpaTest, StaleReportAdvancedToNow) {
  // b reported 100 s ago moving east at 10 m/s: its position should be
  // advanced ~1 km before the CPA evaluation.
  Position a = MakePos(1, 100000, 5.0, 40.0, 0.0, 0.0);
  Position b = MakePos(2, 0, 5.0, 40.1, 10.0, 90.0);
  prediction::CpaResult moved = prediction::ComputeCpa(a, b);
  Position b_now = b;
  geom::LonLat advanced = geom::Destination({b.lon, b.lat}, 90.0, 1000.0);
  b_now.t = 100000;
  b_now.lon = advanced.lon;
  b_now.lat = advanced.lat;
  prediction::CpaResult direct = prediction::ComputeCpa(a, b_now);
  EXPECT_NEAR(moved.distance_now_m, direct.distance_now_m, 20.0);
}

TEST(CpaScreenTest, WarnsOnceUntilCleared) {
  prediction::CpaScreenOptions options;
  options.dcpa_m = 500.0;
  options.tcpa_s = 3600.0;
  prediction::CpaScreen screen(options);
  Position a = MakePos(1, 0, 5.0, 40.0, 5.0, 90.0);
  geom::LonLat bloc = geom::Destination({5.0, 40.0}, 90.0, 5000.0);
  Position b = MakePos(2, 0, bloc.lon, bloc.lat, 5.0, 270.0);
  EXPECT_TRUE(screen.Observe(a).empty());  // nothing else known yet
  auto w1 = screen.Observe(b);
  ASSERT_EQ(w1.size(), 1u);
  // Repeated risky report: no duplicate warning.
  b.t = 10000;
  EXPECT_TRUE(screen.Observe(b).empty());
  // b turns away: condition clears...
  b.t = 20000;
  b.heading_deg = 90.0;
  b.speed_mps = 10.0;
  EXPECT_TRUE(screen.Observe(b).empty());
  // ...and turning back re-warns.
  b.t = 30000;
  b.heading_deg = 270.0;
  auto w2 = screen.Observe(b);
  EXPECT_EQ(w2.size(), 1u);
}

TEST(CpaScreenTest, RangeGateSkipsFarPairs) {
  prediction::CpaScreenOptions options;
  options.max_range_m = 10000.0;
  prediction::CpaScreen screen(options);
  screen.Observe(MakePos(1, 0, 5.0, 40.0));
  screen.Observe(MakePos(2, 0, 8.0, 43.0));  // hundreds of km away
  EXPECT_EQ(screen.pairs_evaluated(), 0u);
}

// ----------------------------------------------------------- CrossStream

class CrossStreamTest : public ::testing::Test {
 protected:
  /// Truth: eastbound at 6 m/s reporting every 10 s for `count` steps.
  std::vector<Position> Truth(int count) {
    std::vector<Position> out;
    geom::LonLat pos{3.0, 40.0};
    for (int i = 0; i < count; ++i) {
      out.push_back(MakePos(7, i * 10000, pos.lon, pos.lat, 6.0, 90.0));
      pos = geom::Destination(pos, 90.0, 60.0);
    }
    return out;
  }

  Position Jitter(const Position& p, Rng& rng, double noise_m) {
    Position out = p;
    geom::LonLat moved = geom::Destination(
        {p.lon, p.lat}, rng.Uniform(0, 360),
        std::fabs(rng.Gaussian(0, noise_m)));
    out.lon = moved.lon;
    out.lat = moved.lat;
    return out;
  }
};

TEST_F(CrossStreamTest, DuplicateReceiverReportsMerged) {
  insitu::CrossStreamFuser fuser(insitu::FusionOptions{});
  Rng rng(1);
  auto truth = Truth(50);
  size_t emitted = 0;
  for (const Position& p : truth) {
    // Two receivers see (almost) the same observation.
    Position r1 = Jitter(p, rng, 20.0);
    Position r2 = Jitter(p, rng, 20.0);
    r2.t += 500;  // slight receive skew
    emitted += fuser.Observe(r1).has_value();
    emitted += fuser.Observe(r2).has_value();
  }
  EXPECT_EQ(emitted, truth.size());  // one fused output per observation
  EXPECT_EQ(fuser.stats().duplicates_merged, truth.size() - 1 + 1);
}

TEST_F(CrossStreamTest, ContradictingSourceRejected) {
  insitu::CrossStreamFuser fuser(insitu::FusionOptions{});
  Rng rng(2);
  auto truth = Truth(30);
  size_t rejected_probe = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    fuser.Observe(Jitter(truth[i], rng, 15.0));
    if (i == 20) {
      // A spoofed/contradicting report 30 km off.
      Position bogus = truth[i];
      geom::LonLat off = geom::Destination({bogus.lon, bogus.lat}, 0.0,
                                           30000.0);
      bogus.lon = off.lon;
      bogus.lat = off.lat;
      bogus.t += 1000;
      rejected_probe += !fuser.Observe(bogus).has_value();
    }
  }
  EXPECT_EQ(rejected_probe, 1u);
  EXPECT_GE(fuser.stats().contradictions_rejected, 1u);
}

TEST_F(CrossStreamTest, FusionReducesNoise) {
  // Fused two-receiver stream should track the truth more closely than a
  // single noisy receiver.
  Rng rng(3);
  auto truth = Truth(200);
  insitu::FusionOptions options;
  insitu::CrossStreamFuser fuser(options);
  RunningStats single_err, fused_err;
  for (const Position& p : truth) {
    Position r1 = Jitter(p, rng, 60.0);
    Position r2 = Jitter(p, rng, 60.0);
    r2.t += 400;
    single_err.Add(geom::HaversineM(r1.lon, r1.lat, p.lon, p.lat));
    auto f1 = fuser.Observe(r1);
    auto f2 = fuser.Observe(r2);
    const Position* fused = f1 ? &*f1 : (f2 ? &*f2 : nullptr);
    if (fused != nullptr) {
      fused_err.Add(geom::HaversineM(fused->lon, fused->lat, p.lon, p.lat));
    }
  }
  EXPECT_LT(fused_err.mean(), single_err.mean());
}

TEST_F(CrossStreamTest, TrackRestartsAfterTimeout) {
  insitu::FusionOptions options;
  options.track_timeout_ms = 5 * kMillisPerMinute;
  insitu::CrossStreamFuser fuser(options);
  fuser.Observe(MakePos(7, 0, 3.0, 40.0));
  // 10 minutes later, far away: would fail the gate, but the track has
  // timed out so it restarts instead of rejecting.
  auto out = fuser.Observe(MakePos(7, 10 * kMillisPerMinute, 4.0, 41.0));
  EXPECT_TRUE(out.has_value());
  EXPECT_EQ(fuser.stats().tracks_started, 2u);
}

// ---------------------------------------------------------------- Mining

TEST(MiningTest, FindsPlantedPattern) {
  // Pattern [1, 2, 3] planted in most sequences with noise between.
  Rng rng(4);
  std::vector<std::vector<int>> sequences;
  for (int s = 0; s < 10; ++s) {
    std::vector<int> seq;
    for (int i = 0; i < 3; ++i) {
      seq.push_back(static_cast<int>(rng.UniformInt(4, 6)));
    }
    seq.push_back(1);
    seq.push_back(static_cast<int>(rng.UniformInt(4, 6)));
    seq.push_back(2);
    seq.push_back(3);
    sequences.push_back(seq);
  }
  cep::MiningOptions options;
  options.min_support = 8;
  options.max_length = 3;
  options.max_gap = 1;
  auto patterns = cep::MineSequentialPatterns(sequences, options);
  bool found = false;
  for (const auto& p : patterns) {
    if (p.symbols == std::vector<int>({1, 2, 3})) {
      found = true;
      EXPECT_EQ(p.support, 10u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MiningTest, GapConstraintExcludesSpreadPatterns) {
  std::vector<std::vector<int>> sequences = {
      {1, 9, 9, 9, 2},
      {1, 9, 9, 9, 2},
  };
  cep::MiningOptions tight;
  tight.min_support = 2;
  tight.max_gap = 0;
  auto patterns = cep::MineSequentialPatterns(sequences, tight);
  for (const auto& p : patterns) {
    EXPECT_NE(p.symbols, std::vector<int>({1, 2}));
  }
  cep::MiningOptions loose = tight;
  loose.max_gap = 5;
  patterns = cep::MineSequentialPatterns(sequences, loose);
  bool found = false;
  for (const auto& p : patterns) found |= p.symbols == std::vector<int>({1, 2});
  EXPECT_TRUE(found);
}

TEST(MiningTest, GapAllowsLaterOccurrence) {
  // The earliest '1' cannot reach '2' within the gap, but a later one
  // can: the miner must still find [1, 2].
  std::vector<std::vector<int>> sequences = {
      {1, 9, 9, 9, 1, 2},
      {1, 2},
  };
  cep::MiningOptions options;
  options.min_support = 2;
  options.max_gap = 0;
  auto patterns = cep::MineSequentialPatterns(sequences, options);
  bool found = false;
  for (const auto& p : patterns) found |= p.symbols == std::vector<int>({1, 2});
  EXPECT_TRUE(found);
}

TEST(MiningTest, SupportCountsSequencesNotOccurrences) {
  std::vector<std::vector<int>> sequences = {{1, 1, 1, 1}, {2}};
  cep::MiningOptions options;
  options.min_support = 1;
  options.max_length = 1;
  auto patterns = cep::MineSequentialPatterns(sequences, options);
  for (const auto& p : patterns) {
    if (p.symbols == std::vector<int>({1})) {
      EXPECT_EQ(p.support, 1u);
    }
  }
}

TEST(MiningTest, ResultsSortedBySupport) {
  std::vector<std::vector<int>> sequences = {{1, 2}, {1, 2}, {1, 3}};
  cep::MiningOptions options;
  options.min_support = 1;
  auto patterns = cep::MineSequentialPatterns(sequences, options);
  for (size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_GE(patterns[i - 1].support, patterns[i].support);
  }
}


TEST(MiningTest, GapTolerantPatternMatchesMinedSemantics) {
  cep::SequentialPattern mined;
  mined.symbols = {1, 2};
  cep::Pattern strict = cep::ToSequencePattern(mined);
  cep::Pattern loose = cep::ToGapTolerantPattern(mined, 4, 2);
  cep::Dfa strict_dfa = cep::CompileStreamingDfa(strict, 4);
  cep::Dfa loose_dfa = cep::CompileStreamingDfa(loose, 4);
  // "1 0 2": one filler event — loose matches, strict does not.
  EXPECT_TRUE(cep::Detect(strict_dfa, {1, 0, 2}).empty());
  EXPECT_EQ(cep::Detect(loose_dfa, {1, 0, 2}).size(), 1u);
  // Two fillers: still within max_gap.
  EXPECT_EQ(cep::Detect(loose_dfa, {1, 0, 0, 2}).size(), 1u);
  // Three fillers: beyond the gap bound.
  EXPECT_TRUE(cep::Detect(loose_dfa, {1, 0, 0, 0, 2}).empty());
  // Adjacent occurrence matches both.
  EXPECT_EQ(cep::Detect(strict_dfa, {1, 2}).size(), 1u);
  EXPECT_EQ(cep::Detect(loose_dfa, {1, 2}).size(), 1u);
}

TEST(MiningTest, GapTolerantZeroGapEqualsStrict) {
  cep::SequentialPattern mined;
  mined.symbols = {0, 1, 2};
  cep::Pattern strict = cep::ToSequencePattern(mined);
  cep::Pattern zero = cep::ToGapTolerantPattern(mined, 3, 0);
  cep::Dfa a = cep::CompileStreamingDfa(strict, 3);
  cep::Dfa b = cep::CompileStreamingDfa(zero, 3);
  Rng rng(5);
  std::vector<int> stream;
  for (int i = 0; i < 300; ++i) {
    stream.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  EXPECT_EQ(cep::Detect(a, stream), cep::Detect(b, stream));
}

TEST(MiningTest, MinedPatternFeedsDetector) {
  cep::SequentialPattern mined;
  mined.symbols = {0, 2};
  cep::Pattern pattern = cep::ToSequencePattern(mined);
  cep::Dfa dfa = cep::CompileStreamingDfa(pattern, 3);
  auto detections = cep::Detect(dfa, {0, 2, 1, 0, 2});
  EXPECT_EQ(detections.size(), 2u);
}

// --------------------------------------------------------------- Kinetic

class KineticTest : public ::testing::Test {
 protected:
  KineticTest() {
    plan_ = {
        {{0.0, 40.0}, 0.0, 0},
        {{0.5, 40.0}, 8000.0, 600000},    // 10 min
        {{1.0, 40.0}, 8000.0, 1200000},   // 20 min
        {{1.5, 40.0}, 0.0, 1800000},      // 30 min
    };
  }
  std::vector<prediction::KineticWaypoint> plan_;
  prediction::KineticPerformance perf_;
};

TEST_F(KineticTest, HoldsEndsOutsideSchedule) {
  prediction::PlanFollowingPredictor predictor(plan_, perf_);
  Position before = predictor.PredictAt(-5000);
  EXPECT_DOUBLE_EQ(before.lon, 0.0);
  Position after = predictor.PredictAt(99999999);
  EXPECT_DOUBLE_EQ(after.lon, 1.5);
  EXPECT_DOUBLE_EQ(after.alt_m, 0.0);
}

TEST_F(KineticTest, InterpolatesAlongLegs) {
  prediction::PlanFollowingPredictor predictor(plan_, perf_);
  Position mid = predictor.PredictAt(900000);  // midway leg 2
  EXPECT_NEAR(mid.lon, 0.75, 0.01);
  EXPECT_NEAR(mid.alt_m, 8000.0, 1.0);
  EXPECT_NEAR(mid.heading_deg, 90.0, 2.0);
}

TEST_F(KineticTest, AccurateWhenFlightFollowsPlan) {
  prediction::PlanFollowingPredictor predictor(plan_, perf_);
  // "Actual" = exactly the plan: kinetic error ~0 at every probe.
  for (TimeMs t : {300000, 600000, 1000000, 1500000}) {
    Position p = predictor.PredictAt(t);
    Position q = predictor.PredictAt(t);
    EXPECT_DOUBLE_EQ(p.lon, q.lon);
    EXPECT_GE(p.speed_mps, 0.0);
  }
}

TEST_F(KineticTest, PredictSeriesAdvances) {
  prediction::PlanFollowingPredictor predictor(plan_, perf_);
  auto series = predictor.Predict(0, 60000, 5);
  ASSERT_EQ(series.size(), 5u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].lon, series[i - 1].lon);
    EXPECT_EQ(series[i].t - series[i - 1].t, 60000);
  }
}

TEST_F(KineticTest, EmptyPlanSafe) {
  prediction::PlanFollowingPredictor predictor({}, perf_);
  Position p = predictor.PredictAt(1000);
  EXPECT_DOUBLE_EQ(p.lon, 0.0);
}

}  // namespace
}  // namespace tcmf
