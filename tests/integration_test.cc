#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>

#include "cep/forecast.h"
#include "common/rng.h"
#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "insitu/lowlevel.h"
#include "insitu/stages.h"
#include "linkdiscovery/linker.h"
#include "prediction/rmf.h"
#include "prediction/trajpred.h"
#include "rdf/bgp.h"
#include "rdf/graph.h"
#include "rdf/rdfgen.h"
#include "rdf/vocab.h"
#include "store/kgstore.h"
#include "stream/pipeline.h"
#include "synopses/critical_points.h"
#include "synopses/stages.h"
#include "va/quality.h"

namespace tcmf {
namespace {

/// The real-time layer of Figure 2, end to end on maritime data:
/// surveillance stream -> cleaning -> synopses -> RDFization -> link
/// discovery -> complex event detection.
TEST(MaritimePipelineIntegration, RealTimeLayerEndToEnd) {
  datagen::VesselSimConfig config;
  config.vessel_count = 20;
  config.duration_ms = 4 * kMillisPerHour;
  config.gap_probability = 0.002;
  config.fishing_fraction = 0.5;
  Rng rng(1);
  auto ports = datagen::MakePorts(rng, config.extent, 8);
  auto regions =
      datagen::MakeRegions(rng, config.extent, 12, "protected", 8000, 30000);
  datagen::WeatherField weather(rng, config.extent);
  datagen::VesselSimulator sim(config, ports, regions, &weather);
  auto data = sim.Run();
  ASSERT_FALSE(data.stream.empty());

  // In-situ cleaning.
  insitu::StreamCleaner::Options clean_options;
  clean_options.extent = config.extent;
  insitu::StreamCleaner cleaner(clean_options);
  std::vector<Position> cleaned;
  for (const Position& p : data.stream) {
    if (cleaner.Observe(p) == insitu::CleanVerdict::kOk) cleaned.push_back(p);
  }
  EXPECT_GT(cleaner.accepted(), data.stream.size() * 9 / 10);

  // Synopses generation.
  synopses::SynopsesGenerator synopses_gen(
      synopses::SynopsesConfig::ForMaritime());
  std::vector<synopses::CriticalPoint> critical;
  for (const Position& p : cleaned) {
    for (auto& cp : synopses_gen.Observe(p)) critical.push_back(cp);
  }
  EXPECT_GT(synopses_gen.CompressionRatio(), 0.4);
  EXPECT_FALSE(critical.empty());

  // RDFization of critical points into the real-time knowledge graph.
  rdf::GraphTemplate tmpl;
  rdf::VariableVector vars;
  rdf::MakePositionTemplate("http://tcmf/", &tmpl, &vars);
  rdf::TripleGenerator rdfizer(std::move(tmpl), std::move(vars));
  rdf::Graph graph;
  for (const auto& cp : critical) {
    for (const rdf::Triple& t :
         rdfizer.GenerateOne(stream::PositionToRecord(cp.pos))) {
      graph.Add(t);
    }
  }
  EXPECT_GT(graph.size(), critical.size() * 5);

  // The graph answers a star query covering every node. Two critical
  // points of the same entity can share a timestamp (e.g. a stop plus a
  // speed change at one report), merging into one node, so compare
  // against distinct (entity, t) pairs.
  std::set<std::pair<uint64_t, TimeMs>> distinct_nodes;
  for (const auto& cp : critical) {
    distinct_nodes.insert({cp.pos.entity_id, cp.pos.t});
  }
  auto rows = rdf::EvaluateBgp(
      graph,
      {{rdf::PatternTerm::Var("n"),
        rdf::PatternTerm::Const(rdf::Iri(rdf::vocab::kType)),
        rdf::PatternTerm::Const(rdf::Iri(rdf::vocab::kSemanticNode))},
       {rdf::PatternTerm::Var("n"),
        rdf::PatternTerm::Const(rdf::Iri(rdf::vocab::kHasSpeed)),
        rdf::PatternTerm::Var("v")}});
  EXPECT_GE(rows.size(), distinct_nodes.size());

  // Link discovery over the critical points.
  linkdiscovery::LinkerConfig link_config;
  link_config.extent = config.extent;
  link_config.link_moving_pairs = true;
  linkdiscovery::SpatioTemporalLinker linker(link_config, regions);
  size_t links = 0;
  for (const auto& cp : critical) links += linker.Observe(cp.pos).size();
  EXPECT_EQ(linker.stats().points_processed, critical.size());
  (void)links;  // link counts depend on where traffic happens to sail
  // Points placed at region centroids must produce within links.
  Position probe;
  probe.entity_id = 999;
  probe.t = 0;
  geom::LonLat centroid = regions[0].shape.Centroid();
  probe.lon = centroid.lon;
  probe.lat = centroid.lat;
  auto probe_links = linker.Observe(probe);
  ASSERT_FALSE(probe_links.empty());
  EXPECT_EQ(probe_links[0].relation,
            linkdiscovery::Link::Relation::kWithin);

  // Complex event detection: heading reversals of fishing vessels.
  cep::Pattern pattern = cep::NorthToSouthReversalPattern();
  cep::Dfa dfa =
      cep::CompileStreamingDfa(pattern, cep::kHeadingSymbolCount);
  std::unordered_map<uint64_t, std::vector<int>> symbol_streams;
  for (const auto& cp : critical) {
    symbol_streams[cp.pos.entity_id].push_back(
        cep::CriticalPointSymbol(cp));
  }
  size_t total_detections = 0;
  for (const auto& [entity, symbols] : symbol_streams) {
    total_detections += cep::Detect(dfa, symbols).size();
  }
  // With 10 trawling vessels executing ~180 degree reversals, at least
  // one north-to-south reversal must be detected.
  EXPECT_GT(total_detections, 0u);
}

/// The batch layer: RDFize critical points + weather into the store and
/// check plans agree and pushdown prunes.
TEST(BatchLayerIntegration, StoreServesSpatioTemporalStarQueries) {
  datagen::VesselSimConfig config;
  config.vessel_count = 10;
  config.duration_ms = 2 * kMillisPerHour;
  Rng rng(2);
  auto ports = datagen::MakePorts(rng, config.extent, 5);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  geom::StCellEncoder encoder(config.extent, 8, config.start_time,
                              15 * kMillisPerMinute);
  store::KnowledgeStore kg(encoder, 4);
  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForMaritime());
  size_t nodes = 0;
  for (const Position& p : data.stream) {
    for (auto& cp : gen.Observe(p)) {
      rdf::Term node = rdf::Iri(
          "http://tcmf/node/" + std::to_string(cp.pos.entity_id) + "/" +
          std::to_string(cp.pos.t));
      kg.AddPositionNode(node, cp.pos.lon, cp.pos.lat, cp.pos.t);
      kg.Add({node, rdf::Iri(rdf::vocab::kHasSpeed),
              rdf::DoubleLiteral(cp.pos.speed_mps)});
      ++nodes;
    }
  }
  ASSERT_GT(nodes, 20u);
  kg.Compile();

  store::StarQuery query;
  query.predicate_ids = {
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasSpeed)),
      kg.dictionary().Lookup(rdf::Iri(rdf::vocab::kHasTimestamp))};
  query.has_st_constraint = true;
  query.st_box.bounds = {-2.0, 37.0, 6.0, 42.0};
  query.st_box.t_begin = 0;
  query.st_box.t_end = kMillisPerHour;

  store::StarQueryMetrics m_scan, m_push;
  auto r1 = kg.RunStar(query, store::StarPlan::kTriplesTableScan, &m_scan);
  auto r2 = kg.RunStar(query, store::StarPlan::kVerticalPartitionPushdown,
                       &m_push);
  EXPECT_EQ(r1.size(), r2.size());
  // Verify every returned subject really satisfies the constraint.
  for (const auto& row : r2) {
    double lon, lat;
    TimeMs t;
    ASSERT_TRUE(kg.LookupPosition(row.subject, &lon, &lat, &t));
    EXPECT_TRUE(query.st_box.bounds.Contains(lon, lat));
    EXPECT_GE(t, query.st_box.t_begin);
    EXPECT_LE(t, query.st_box.t_end);
  }
}

/// Aviation: simulator -> synopses (takeoff/landing) -> FLP comparison ->
/// hybrid TP training on enriched waypoint deviations.
TEST(AviationPipelineIntegration, PredictionStackEndToEnd) {
  datagen::FlightSimConfig config;
  config.flight_count = 30;
  config.seed = 3;
  Rng wrng(4);
  datagen::WeatherField weather(wrng, config.extent, 20.0);
  datagen::FlightSimulator sim(config, datagen::DefaultOriginAirport(),
                               datagen::DefaultDestinationAirport(),
                               &weather);
  auto flights = sim.Run();
  ASSERT_EQ(flights.size(), 30u);

  // Synopses: every flight takes off; aviation config detects it.
  synopses::SynopsesGenerator gen(synopses::SynopsesConfig::ForAviation());
  size_t takeoffs = 0;
  for (const auto& f : flights) {
    for (const Position& p : f.actual.points) {
      for (auto& cp : gen.Observe(p)) {
        takeoffs += cp.type == synopses::CriticalPointType::kTakeoff;
      }
    }
  }
  EXPECT_GE(takeoffs, flights.size() / 2);

  // FLP on one flight's climb phase: RMF* at least as good as RMF.
  const auto& flight = flights[0].actual;
  ASSERT_GT(flight.points.size(), 60u);
  prediction::RmfPredictor rmf(3, 12);
  prediction::RmfStarPredictor star;
  for (size_t i = 0; i < 40; ++i) {
    rmf.Observe(flight.points[i]);
    star.Observe(flight.points[i]);
  }
  auto rmf_pred = rmf.Predict(8);
  auto star_pred = star.Predict(8);
  auto error = [&](const std::vector<prediction::PredictedPoint>& pred) {
    double sum = 0;
    for (size_t k = 0; k < pred.size(); ++k) {
      const Position& truth = flight.points[40 + k];
      sum += geom::HaversineM(pred[k].loc.lon, pred[k].loc.lat, truth.lon,
                              truth.lat);
    }
    return sum / pred.size();
  };
  EXPECT_LT(error(star_pred), 8000.0);
  EXPECT_LT(error(star_pred), error(rmf_pred) * 3.0);

  // Hybrid TP: build examples from plans + weather enrichment.
  std::vector<prediction::TpExample> examples;
  for (const auto& f : flights) {
    prediction::TpExample ex;
    std::vector<geom::LonLat> wps;
    std::vector<TimeMs> etas;
    for (const auto& wp : f.plan.waypoints) {
      wps.push_back(wp.loc);
      etas.push_back(wp.eta);
      prediction::EnrichedPoint ep;
      ep.loc = wp.loc;
      ep.t = wp.eta;
      auto w = weather.Sample(wp.loc.lon, wp.loc.lat, wp.eta);
      ep.features = {w.severity,
                     static_cast<double>(f.aircraft.cls) / 2.0};
      ex.reference.push_back(ep);
    }
    ex.deviations_m = prediction::WaypointDeviations(wps, etas, f.actual);
    ASSERT_EQ(ex.deviations_m.size(), ex.reference.size());
    examples.push_back(std::move(ex));
  }
  prediction::HybridTpOptions tp_options;
  tp_options.erp.spatial_scale_m = 20000.0;
  tp_options.reachability_threshold = 3.0;
  prediction::HybridTpModel model =
      prediction::HybridTpModel::Train(examples, tp_options);
  EXPECT_GE(model.cluster_count(), 1);
  auto predicted = model.PredictDeviations(examples[0].reference, {});
  EXPECT_EQ(predicted.size(), examples[0].reference.size());
}

/// The synopses generator as a KeyedProcess operator on the stream
/// substrate must produce exactly what direct invocation produces.
TEST(StreamIntegration, SynopsesOperatorParity) {
  datagen::VesselSimConfig config;
  config.vessel_count = 6;
  config.duration_ms = kMillisPerHour;
  Rng rng(5);
  auto ports = datagen::MakePorts(rng, config.extent, 4);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  // Direct invocation.
  synopses::SynopsesGenerator direct(synopses::SynopsesConfig::ForMaritime());
  std::vector<synopses::CriticalPoint> expected;
  for (const Position& p : data.stream) {
    for (auto& cp : direct.Observe(p)) expected.push_back(cp);
  }

  // As a dataflow job: source -> keyed synopses operator -> sink.
  // Each key gets its own generator instance (parallelism-safe state).
  struct SynopsisState {
    std::unique_ptr<synopses::SynopsesGenerator> gen;
  };
  stream::Pipeline pipeline;
  std::vector<synopses::CriticalPoint> actual;
  stream::Flow<Position>::FromVector(&pipeline, data.stream)
      .KeyedProcess<synopses::CriticalPoint, SynopsisState>(
          [](const Position& p) { return p.entity_id; },
          [](const Position& p, SynopsisState& state,
             const std::function<void(synopses::CriticalPoint)>& emit) {
            if (!state.gen) {
              state.gen = std::make_unique<synopses::SynopsesGenerator>(
                  synopses::SynopsesConfig::ForMaritime());
            }
            for (auto& cp : state.gen->Observe(p)) emit(cp);
          })
      .CollectInto(&actual);
  pipeline.Run();

  ASSERT_EQ(actual.size(), expected.size());
  // Same critical points per entity (global order may differ).
  auto key = [](const synopses::CriticalPoint& cp) {
    return std::tuple(cp.pos.entity_id, cp.pos.t, static_cast<int>(cp.type));
  };
  auto sort_key = [&](std::vector<synopses::CriticalPoint>& v) {
    std::sort(v.begin(), v.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
  };
  sort_key(actual);
  sort_key(expected);
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(key(actual[i]), key(expected[i]));
  }
}

/// The packaged dataflow stages (in-situ cleaning + parallel keyed
/// synopses) must match direct invocation, and the pipeline's stage
/// metrics must account for every record.
TEST(StreamIntegration, StagedCleaningAndSynopsesParityWithMetrics) {
  datagen::VesselSimConfig config;
  config.vessel_count = 8;
  config.duration_ms = kMillisPerHour;
  config.outlier_probability = 0.01;  // give the cleaner work to do
  Rng rng(7);
  auto ports = datagen::MakePorts(rng, config.extent, 4);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  insitu::StreamCleaner::Options clean_options;
  clean_options.extent = config.extent;

  // Direct invocation: cleaner, then one generator per entity (matching
  // the keyed stage's per-key state), flushed at end-of-stream.
  insitu::StreamCleaner direct_cleaner(clean_options);
  std::map<uint64_t, synopses::SynopsesGenerator> direct_gens;
  std::vector<synopses::CriticalPoint> expected;
  for (const Position& p : data.stream) {
    if (direct_cleaner.Observe(p) != insitu::CleanVerdict::kOk) continue;
    auto [it, inserted] = direct_gens.try_emplace(
        p.entity_id, synopses::SynopsesConfig::ForMaritime());
    for (auto& cp : it->second.Observe(p)) expected.push_back(cp);
  }
  for (auto& [id, gen] : direct_gens) {
    for (auto& cp : gen.Flush()) expected.push_back(cp);
  }

  // As packaged dataflow stages, with 2 keyed workers.
  stream::Pipeline pipeline;
  std::vector<synopses::CriticalPoint> actual;
  auto source = stream::Flow<Position>::FromVector(
      &pipeline, data.stream, {.name = "source", .capacity = 256});
  synopses::SynopsesStage(
      insitu::CleaningStage(source, clean_options, {.capacity = 256}),
      synopses::SynopsesConfig::ForMaritime(),
      /*parallelism=*/2, {.capacity = 256})
      .CollectInto(&actual);
  pipeline.Run();

  ASSERT_EQ(actual.size(), expected.size());
  auto key = [](const synopses::CriticalPoint& cp) {
    return std::tuple(cp.pos.entity_id, cp.pos.t, static_cast<int>(cp.type));
  };
  auto sort_key = [&](std::vector<synopses::CriticalPoint>& v) {
    std::sort(v.begin(), v.end(),
              [&](const auto& a, const auto& b) { return key(a) < key(b); });
  };
  sort_key(actual);
  sort_key(expected);
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(key(actual[i]), key(expected[i]));
  }

  // Stage metrics account for the whole stream: the source edge carried
  // every raw record, the cleaner's output only the accepted ones, and
  // the synopses edge exactly the emitted critical points.
  auto report = pipeline.Report();
  const stream::StageMetrics* src = nullptr;
  const stream::StageMetrics* clean = nullptr;
  const stream::StageMetrics* syn = nullptr;
  for (const auto& m : report) {
    if (m.stage == "source") src = &m;
    if (m.stage == "insitu.clean") clean = &m;
    if (m.stage == "synopses") syn = &m;
  }
  ASSERT_NE(src, nullptr);
  ASSERT_NE(clean, nullptr);
  ASSERT_NE(syn, nullptr);
  EXPECT_EQ(src->records_in, data.stream.size());
  EXPECT_EQ(src->records_out, data.stream.size());
  EXPECT_EQ(clean->records_in, direct_cleaner.accepted());
  EXPECT_EQ(syn->records_out, actual.size());
  EXPECT_FALSE(src->cancelled);
}

/// Data quality: the injected veracity problems are found by the report.
TEST(QualityIntegration, InjectedProblemsDetected) {
  datagen::VesselSimConfig config;
  config.vessel_count = 12;
  config.duration_ms = 2 * kMillisPerHour;
  config.gap_probability = 0.01;
  config.outlier_probability = 0.01;
  Rng rng(6);
  auto ports = datagen::MakePorts(rng, config.extent, 4);
  datagen::VesselSimulator sim(config, ports, {}, nullptr);
  auto data = sim.Run();

  // Group stream into per-entity trajectories.
  std::unordered_map<uint64_t, Trajectory> by_entity;
  for (const Position& p : data.stream) {
    by_entity[p.entity_id].points.push_back(p);
  }
  std::vector<Trajectory> trajs;
  for (auto& [id, t] : by_entity) trajs.push_back(std::move(t));

  va::QualityOptions options;
  options.max_speed_mps = 50.0;
  va::QualityReport report = va::AssessQuality(trajs, options);
  EXPECT_GT(report.gaps, 0u);         // injected comm gaps
  EXPECT_GT(report.speed_spikes, 0u); // injected outliers
}

}  // namespace
}  // namespace tcmf
