#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cep/automaton.h"
#include "cep/forecast.h"
#include "cep/pattern.h"
#include "cep/pmc.h"
#include "common/rng.h"

namespace tcmf::cep {
namespace {

// --------------------------------------------------------------- Pattern

TEST(PatternTest, ToStringForms) {
  Pattern r = Pattern::Seq({Pattern::Symbol(0),
                            Pattern::Star(Pattern::Or({Pattern::Symbol(0),
                                                       Pattern::Symbol(1)})),
                            Pattern::Symbol(2)});
  EXPECT_EQ(r.ToString(), "(0 (0|1)* 2)");
}

TEST(PatternTest, PlusDesugarsToSeqStar) {
  Pattern p = Pattern::Plus(Pattern::Symbol(1));
  ASSERT_EQ(p.kind(), Pattern::Kind::kSeq);
  ASSERT_EQ(p.children().size(), 2u);
  EXPECT_EQ(p.children()[0].kind(), Pattern::Kind::kSymbol);
  EXPECT_EQ(p.children()[1].kind(), Pattern::Kind::kStar);
}

// ------------------------------------------------------------- Automaton

/// Checks whether the plain DFA accepts a whole word.
bool Accepts(const Dfa& dfa, const std::vector<int>& word) {
  int state = 0;
  for (int sym : word) state = dfa.Next(state, sym);
  return dfa.is_final[state];
}

TEST(AutomatonTest, SymbolDfa) {
  Dfa dfa = CompileDfa(Pattern::Symbol(1), 2);
  EXPECT_TRUE(Accepts(dfa, {1}));
  EXPECT_FALSE(Accepts(dfa, {0}));
  EXPECT_FALSE(Accepts(dfa, {}));
  EXPECT_FALSE(Accepts(dfa, {1, 1}));
}

TEST(AutomatonTest, SeqDfa) {
  // R = acc over {a=0, b=1, c=2} — the paper's Figure 6(a) pattern.
  Pattern r = Pattern::Seq(
      {Pattern::Symbol(0), Pattern::Symbol(2), Pattern::Symbol(2)});
  Dfa dfa = CompileDfa(r, 3);
  EXPECT_TRUE(Accepts(dfa, {0, 2, 2}));
  EXPECT_FALSE(Accepts(dfa, {0, 2}));
  EXPECT_FALSE(Accepts(dfa, {0, 2, 2, 2}));
  EXPECT_FALSE(Accepts(dfa, {1, 2, 2}));
}

TEST(AutomatonTest, OrDfa) {
  Pattern r = Pattern::Or({Pattern::Symbol(0), Pattern::Symbol(1)});
  Dfa dfa = CompileDfa(r, 3);
  EXPECT_TRUE(Accepts(dfa, {0}));
  EXPECT_TRUE(Accepts(dfa, {1}));
  EXPECT_FALSE(Accepts(dfa, {2}));
}

TEST(AutomatonTest, StarDfa) {
  Pattern r = Pattern::Star(Pattern::Symbol(0));
  Dfa dfa = CompileDfa(r, 2);
  EXPECT_TRUE(Accepts(dfa, {}));
  EXPECT_TRUE(Accepts(dfa, {0}));
  EXPECT_TRUE(Accepts(dfa, {0, 0, 0}));
  EXPECT_FALSE(Accepts(dfa, {0, 1}));
}

TEST(AutomatonTest, ComplexPattern) {
  // R = 0 (0|1)* 2: the NorthToSouthReversal shape.
  Pattern r = Pattern::Seq({Pattern::Symbol(0),
                            Pattern::Star(Pattern::Or({Pattern::Symbol(0),
                                                       Pattern::Symbol(1)})),
                            Pattern::Symbol(2)});
  Dfa dfa = CompileDfa(r, 3);
  EXPECT_TRUE(Accepts(dfa, {0, 2}));
  EXPECT_TRUE(Accepts(dfa, {0, 0, 1, 0, 2}));
  EXPECT_FALSE(Accepts(dfa, {0, 2, 1}));
  EXPECT_FALSE(Accepts(dfa, {1, 2}));
  EXPECT_FALSE(Accepts(dfa, {0, 2, 2}));
}

TEST(AutomatonTest, StreamingDfaForFig6PatternHasFourStates) {
  // Σ* a c c over Σ = {a, b, c}: the paper's Figure 6(a) DFA (4 states).
  Pattern r = Pattern::Seq(
      {Pattern::Symbol(0), Pattern::Symbol(2), Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 3);
  EXPECT_EQ(dfa.state_count, 4);
  int finals = 0;
  for (bool f : dfa.is_final) finals += f;
  EXPECT_EQ(finals, 1);
}

TEST(AutomatonTest, DetectFindsAllSuffixMatches) {
  Pattern r = Pattern::Seq(
      {Pattern::Symbol(0), Pattern::Symbol(2), Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 3);
  //                 0  1  2  3  4  5  6  7  8
  std::vector<int> s{0, 2, 2, 1, 0, 0, 2, 2, 2};
  auto detections = Detect(dfa, s);
  ASSERT_EQ(detections.size(), 2u);
  EXPECT_EQ(detections[0], 2u);
  EXPECT_EQ(detections[1], 7u);
}

TEST(AutomatonTest, DetectSkipsOutOfAlphabetSymbols) {
  Dfa dfa = CompileStreamingDfa(Pattern::Symbol(0), 2);
  auto detections = Detect(dfa, {5, 0, -1, 0});
  EXPECT_EQ(detections.size(), 2u);
}

TEST(AutomatonTest, MinimizationKeepsLanguage) {
  // Random patterns: streaming DFA detection must match brute-force
  // suffix matching via the plain DFA.
  Rng rng(1);
  Pattern r = Pattern::Seq({Pattern::Symbol(1),
                            Pattern::Or({Pattern::Symbol(0),
                                         Pattern::Seq({Pattern::Symbol(2),
                                                       Pattern::Symbol(2)})}),
                            Pattern::Symbol(1)});
  Dfa plain = CompileDfa(r, 3);
  Dfa streaming = CompileStreamingDfa(r, 3);
  std::vector<int> stream;
  for (int i = 0; i < 400; ++i) {
    stream.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  auto detections = Detect(streaming, stream);
  // Brute force: i is a detection iff some suffix ending at i matches R.
  std::vector<size_t> expected;
  for (size_t i = 0; i < stream.size(); ++i) {
    bool match = false;
    for (size_t start = 0; start <= i && !match; ++start) {
      std::vector<int> word(stream.begin() + start, stream.begin() + i + 1);
      if (Accepts(plain, word)) match = true;
    }
    if (match) expected.push_back(i);
  }
  EXPECT_EQ(detections, expected);
}

// ------------------------------------------------------------------- PMC

TEST(MarkovModelTest, Order0FitMatchesFrequencies) {
  MarkovInputModel model(3, 0);
  std::vector<int> stream;
  for (int i = 0; i < 600; ++i) stream.push_back(i % 3 == 0 ? 0 : 1);
  model.Fit(stream, 0.0001);
  EXPECT_NEAR(model.Prob(0, 0), 1.0 / 3, 0.01);
  EXPECT_NEAR(model.Prob(0, 1), 2.0 / 3, 0.01);
  EXPECT_NEAR(model.Prob(0, 2), 0.0, 0.01);
}

TEST(MarkovModelTest, Order1CapturesTransitions) {
  MarkovInputModel model(2, 1);
  // Deterministic alternation 0101...
  std::vector<int> stream;
  for (int i = 0; i < 500; ++i) stream.push_back(i % 2);
  model.Fit(stream, 0.001);
  EXPECT_GT(model.Prob(0, 1), 0.99);
  EXPECT_GT(model.Prob(1, 0), 0.99);
}

TEST(MarkovModelTest, ContextUpdateSlidesWindow) {
  MarkovInputModel model(3, 2);
  int ctx = model.InitialContext();
  ctx = model.UpdateContext(ctx, 1);  // history [0,1]
  ctx = model.UpdateContext(ctx, 2);  // history [1,2]
  EXPECT_EQ(ctx, 1 * 3 + 2);
  ctx = model.UpdateContext(ctx, 0);  // history [2,0]
  EXPECT_EQ(ctx, 2 * 3 + 0);
}

TEST(MarkovModelTest, ProbabilitiesNormalized) {
  MarkovInputModel model(4, 2);
  Rng rng(2);
  std::vector<int> stream;
  for (int i = 0; i < 2000; ++i) {
    stream.push_back(static_cast<int>(rng.UniformInt(0, 3)));
  }
  model.Fit(stream);
  for (int c = 0; c < model.context_count(); ++c) {
    double sum = 0;
    for (int s = 0; s < 4; ++s) sum += model.Prob(c, s);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}


TEST(MarkovModelTest, OnlineUpdateTracksDrift) {
  // Regime A: after 0 comes 1. Regime B: after 0 comes 2. The online
  // update must forget A and learn B.
  MarkovInputModel model(3, 1);
  Rng rng(21);
  std::vector<int> regime_a;
  for (int i = 0; i < 4000; ++i) regime_a.push_back(i % 2);  // 0 1 0 1 ...
  model.Fit(regime_a, 0.1);
  EXPECT_GT(model.Prob(0, 1), 0.9);

  // Stream regime B online: 0 2 0 2 ...
  for (int i = 0; i < 4000; ++i) {
    model.ObserveOnline(i % 2 == 0 ? 0 : 2, /*decay=*/0.995);
  }
  EXPECT_GT(model.Prob(0, 2), 0.8);
  EXPECT_LT(model.Prob(0, 1), 0.2);
}

TEST(MarkovModelTest, OnlineUpdateKeepsRowsNormalized) {
  MarkovInputModel model(4, 1);
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) {
    model.ObserveOnline(static_cast<int>(rng.UniformInt(0, 3)));
  }
  for (int c = 0; c < model.context_count(); ++c) {
    double sum = 0;
    for (int s = 0; s < 4; ++s) sum += model.Prob(c, s);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MarkovModelTest, OnlineIgnoresOutOfAlphabetSymbols) {
  MarkovInputModel model(2, 1);
  model.ObserveOnline(-1);
  model.ObserveOnline(5);
  double sum = model.Prob(0, 0) + model.Prob(0, 1);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

class PmcTest : public ::testing::Test {
 protected:
  PmcTest() {
    // Figure 6: R = acc over {a,b,c}, i.i.d.-ish input.
    pattern_ = Pattern::Seq(
        {Pattern::Symbol(0), Pattern::Symbol(2), Pattern::Symbol(2)});
    dfa_ = CompileStreamingDfa(pattern_, 3);
  }
  Pattern pattern_ = Pattern::Symbol(0);
  Dfa dfa_;
};

TEST_F(PmcTest, Order0ChainHasDfaStateCount) {
  MarkovInputModel input(3, 0);
  PatternMarkovChain pmc(dfa_, input);
  EXPECT_EQ(pmc.state_count(), dfa_.state_count);
}

TEST_F(PmcTest, Order1ChainHasProductStateCount) {
  MarkovInputModel input(3, 1);
  PatternMarkovChain pmc(dfa_, input);
  EXPECT_EQ(pmc.state_count(), dfa_.state_count * 3);
}

TEST_F(PmcTest, WaitingTimeSumsTowardOne) {
  // With positive transition probabilities everywhere the DFA hits a final
  // state eventually: waiting-time mass approaches 1 as horizon grows.
  MarkovInputModel input(3, 0);
  std::vector<int> uniform_stream;
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    uniform_stream.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  input.Fit(uniform_stream);
  PatternMarkovChain pmc(dfa_, input);
  auto wt = pmc.WaitingTime(0, 400);
  double total = std::accumulate(wt.begin(), wt.end(), 0.0);
  EXPECT_GT(total, 0.98);
  EXPECT_LE(total, 1.0 + 1e-9);
}

TEST_F(PmcTest, WaitingTimeMatchesSimulation) {
  // Property check: analytic waiting times against Monte Carlo.
  MarkovInputModel input(3, 0);
  Rng rng(4);
  std::vector<int> train;
  for (int i = 0; i < 5000; ++i) {
    train.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  input.Fit(train);
  PatternMarkovChain pmc(dfa_, input);
  auto wt = pmc.WaitingTime(pmc.StateOf(0, 0), 30);

  // Simulate: from DFA state 0, uniform symbols, first hit of final.
  std::vector<double> simulated(30, 0.0);
  const int kTrials = 60000;
  for (int trial = 0; trial < kTrials; ++trial) {
    int state = 0;
    for (int k = 1; k <= 30; ++k) {
      int sym = static_cast<int>(rng.UniformInt(0, 2));
      state = dfa_.Next(state, sym);
      if (dfa_.is_final[state]) {
        simulated[k - 1] += 1.0;
        break;
      }
    }
  }
  for (int k = 0; k < 30; ++k) {
    EXPECT_NEAR(wt[k], simulated[k] / kTrials, 0.01) << "k=" << k + 1;
  }
}

TEST(SmallestIntervalTest, FindsTightestWindow) {
  std::vector<double> wt = {0.05, 0.1, 0.4, 0.3, 0.1, 0.05};
  auto iv = PatternMarkovChain::SmallestInterval(wt, 0.6);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->start, 3);  // steps 3..4 = 0.4 + 0.3 = 0.7
  EXPECT_EQ(iv->end, 4);
  EXPECT_NEAR(iv->prob, 0.7, 1e-9);
}

TEST(SmallestIntervalTest, SingleStepSuffices) {
  std::vector<double> wt = {0.05, 0.9, 0.05};
  auto iv = PatternMarkovChain::SmallestInterval(wt, 0.5);
  ASSERT_TRUE(iv.has_value());
  EXPECT_EQ(iv->start, 2);
  EXPECT_EQ(iv->end, 2);
}

TEST(SmallestIntervalTest, UnreachableThreshold) {
  std::vector<double> wt = {0.1, 0.1, 0.1};
  EXPECT_FALSE(PatternMarkovChain::SmallestInterval(wt, 0.9).has_value());
}

TEST(SmallestIntervalTest, EmptyDistribution) {
  EXPECT_FALSE(PatternMarkovChain::SmallestInterval({}, 0.5).has_value());
}

// -------------------------------------------------------------- Forecast

/// A strictly 2nd-order stream over {0,1,2}: what follows a 0 depends on
/// the symbol *before* the 0. After "1 0" a 2 almost always follows;
/// after "2 0" a 2 never does. An order-1 model can only see the blended
/// P(2|0) and is therefore miscalibrated in both contexts; an order-2
/// model is exact.
std::vector<int> MarkovStream(Rng& rng, int length) {
  std::vector<int> out;
  int a = 1, b = 1;
  for (int i = 0; i < length; ++i) {
    int next;
    if (b == 0) {
      if (a == 1) {
        next = rng.Bernoulli(0.95) ? 2 : 1;
      } else {
        next = rng.Bernoulli(0.95) ? 1 : 0;
      }
    } else {
      double u = rng.Uniform(0.0, 1.0);
      next = u < 0.5 ? 0 : (u < 0.8 ? (b == 1 ? 2 : 1) : b);
    }
    out.push_back(next);
    a = b;
    b = next;
  }
  return out;
}

TEST(WayebEngineTest, DetectsAndForecasts) {
  Pattern r = Pattern::Seq(
      {Pattern::Symbol(0), Pattern::Symbol(2), Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 3);
  MarkovInputModel input(3, 1);
  Rng rng(5);
  std::vector<int> train;
  for (int i = 0; i < 5000; ++i) {
    train.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  input.Fit(train);
  WayebEngine::Options options;
  options.threshold = 0.3;
  options.horizon = 40;
  WayebEngine engine(dfa, input, options);
  size_t detections = 0, forecasts = 0;
  for (int i = 0; i < 3000; ++i) {
    auto r2 = engine.Observe(static_cast<int>(rng.UniformInt(0, 2)));
    detections += r2.detected;
    forecasts += r2.forecast_emitted;
  }
  EXPECT_GT(detections, 0u);
  EXPECT_GT(forecasts, 0u);
}

TEST(ScoreForecastsTest, PrecisionIncreasesWithThreshold) {
  // Well-specified model (order 2 on an order-2 stream): the Figure 8
  // shape — precision grows with the threshold, at the cost of spread.
  Pattern r = Pattern::Seq({Pattern::Symbol(0), Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 3);
  Rng rng(6);
  std::vector<int> train = MarkovStream(rng, 30000);
  std::vector<int> test = MarkovStream(rng, 30000);
  MarkovInputModel input(3, 2);
  input.Fit(train);
  ForecastScore low = ScoreForecasts(dfa, input, test, 0.2, 200);
  ForecastScore high = ScoreForecasts(dfa, input, test, 0.75, 200);
  ASSERT_GT(low.forecasts, 0u);
  ASSERT_GT(high.forecasts, 0u);
  EXPECT_GT(high.precision, low.precision);
  // Higher confidence costs wider intervals.
  EXPECT_GT(high.mean_spread, low.mean_spread);
}

TEST(ScoreForecastsTest, HigherOrderHelpsOnOrder2Stream) {
  // Pattern Σ*(0 2) on the strictly-2nd-order stream: the order-1 model
  // blends P(2 | "1 0") = 0.95 with P(2 | "x 0") = 0 and emits
  // one-step forecasts after *every* 0, failing in the bad contexts.
  // The order-2 model forecasts per context and is calibrated.
  Pattern r = Pattern::Seq({Pattern::Symbol(0), Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 3);
  Rng rng(7);
  std::vector<int> train = MarkovStream(rng, 40000);
  std::vector<int> test = MarkovStream(rng, 40000);
  MarkovInputModel m1(3, 1), m2(3, 2);
  m1.Fit(train);
  m2.Fit(train);
  ForecastScore s1 = ScoreForecasts(dfa, m1, test, 0.3, 100);
  ForecastScore s2 = ScoreForecasts(dfa, m2, test, 0.3, 100);
  ASSERT_GT(s1.forecasts, 0u);
  ASSERT_GT(s2.forecasts, 0u);
  EXPECT_GT(s2.precision, s1.precision + 0.05);
}

// ---------------------------------------------------------- Symbol map

synopses::CriticalPoint Turn(double heading) {
  synopses::CriticalPoint cp;
  cp.type = synopses::CriticalPointType::kChangeInHeading;
  cp.pos.heading_deg = heading;
  return cp;
}

TEST(SymbolMapTest, HeadingBuckets) {
  EXPECT_EQ(CriticalPointSymbol(Turn(0.0)), kTurnNorth);
  EXPECT_EQ(CriticalPointSymbol(Turn(350.0)), kTurnNorth);
  EXPECT_EQ(CriticalPointSymbol(Turn(90.0)), kTurnEast);
  EXPECT_EQ(CriticalPointSymbol(Turn(180.0)), kTurnSouth);
  EXPECT_EQ(CriticalPointSymbol(Turn(270.0)), kTurnWest);
}

TEST(SymbolMapTest, NonTurnIsOther) {
  synopses::CriticalPoint cp;
  cp.type = synopses::CriticalPointType::kStop;
  EXPECT_EQ(CriticalPointSymbol(cp), kOther);
}

TEST(SymbolMapTest, ReversalPatternDetectsNorthToSouth) {
  Pattern r = NorthToSouthReversalPattern();
  Dfa dfa = CompileStreamingDfa(r, kHeadingSymbolCount);
  // N N E S -> detection at the S.
  std::vector<int> stream = {kTurnWest, kTurnNorth, kTurnNorth, kTurnEast,
                             kTurnSouth, kTurnWest};
  auto detections = Detect(dfa, stream);
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0], 4u);
}

TEST(SymbolMapTest, ReversalPatternRejectsInterruptedSequence) {
  Pattern r = NorthToSouthReversalPattern();
  Dfa dfa = CompileStreamingDfa(r, kHeadingSymbolCount);
  // A West turn breaks the (N|E)* bridge.
  std::vector<int> stream = {kTurnNorth, kTurnWest, kTurnSouth};
  EXPECT_TRUE(Detect(dfa, stream).empty());
}


TEST(PatternParserTest, ParsesReversalShape) {
  auto p = ParsePattern("0 (0|1)* 2");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().ToString(), "(0 (0|1)* 2)");
  // Language equivalence with the hand-built pattern.
  Pattern manual = Pattern::Seq(
      {Pattern::Symbol(0),
       Pattern::Star(Pattern::Or({Pattern::Symbol(0), Pattern::Symbol(1)})),
       Pattern::Symbol(2)});
  Dfa a = CompileStreamingDfa(p.value(), 3);
  Dfa b = CompileStreamingDfa(manual, 3);
  Rng rng(9);
  std::vector<int> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  EXPECT_EQ(Detect(a, stream), Detect(b, stream));
}

TEST(PatternParserTest, PlusAndNesting) {
  auto p = ParsePattern("(0 1)+ | 2*");
  ASSERT_TRUE(p.ok());
  Dfa dfa = CompileDfa(p.value(), 3);
  auto accepts = [&](std::vector<int> w) {
    int s = 0;
    for (int sym : w) s = dfa.Next(s, sym);
    return dfa.is_final[s];
  };
  EXPECT_TRUE(accepts({0, 1}));
  EXPECT_TRUE(accepts({0, 1, 0, 1}));
  EXPECT_TRUE(accepts({}));        // 2* matches empty
  EXPECT_TRUE(accepts({2, 2, 2}));
  EXPECT_FALSE(accepts({0}));
  EXPECT_FALSE(accepts({1, 0}));
}

TEST(PatternParserTest, MultiDigitSymbols) {
  auto p = ParsePattern("12 3");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p.value().kind(), Pattern::Kind::kSeq);
  EXPECT_EQ(p.value().children()[0].symbol(), 12);
}

TEST(PatternParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParsePattern("").ok());
  EXPECT_FALSE(ParsePattern("(0 1").ok());
  EXPECT_FALSE(ParsePattern("0 | ").ok());
  EXPECT_FALSE(ParsePattern("a b").ok());
  EXPECT_FALSE(ParsePattern("0 ) 1").ok());
  EXPECT_FALSE(ParsePattern("*").ok());
}

TEST(PatternParserTest, RoundTripThroughToString) {
  for (const char* text : {"0", "0 1 2", "(0|1)", "0* 1+ (2 0)*"}) {
    auto p = ParsePattern(text);
    ASSERT_TRUE(p.ok()) << text;
    auto again = ParsePattern(p.value().ToString());
    ASSERT_TRUE(again.ok()) << p.value().ToString();
    EXPECT_EQ(again.value().ToString(), p.value().ToString());
  }
}


TEST(SymbolClassifierTest, MatchesLegacyHeadingMapping) {
  SymbolClassifier classifier = MakeHeadingClassifier();
  EXPECT_EQ(classifier.alphabet_size(), kHeadingSymbolCount);
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    synopses::CriticalPoint cp;
    cp.type = rng.Bernoulli(0.7)
                  ? synopses::CriticalPointType::kChangeInHeading
                  : synopses::CriticalPointType::kStop;
    cp.pos.heading_deg = rng.Uniform(0.0, 360.0);
    EXPECT_EQ(classifier.Classify(cp), CriticalPointSymbol(cp));
  }
}

TEST(SymbolClassifierTest, FirstMatchWinsAndOtherFallsThrough) {
  SymbolClassifier classifier;
  classifier.Define("fast", [](const synopses::CriticalPoint& cp) {
    return cp.pos.speed_mps > 10;
  });
  classifier.Define("moving", [](const synopses::CriticalPoint& cp) {
    return cp.pos.speed_mps > 1;
  });
  synopses::CriticalPoint cp;
  cp.pos.speed_mps = 20;
  EXPECT_EQ(classifier.Classify(cp), 0);  // fast wins over moving
  cp.pos.speed_mps = 5;
  EXPECT_EQ(classifier.Classify(cp), 1);
  cp.pos.speed_mps = 0.1;
  EXPECT_EQ(classifier.Classify(cp), classifier.other_symbol());
}

TEST(SymbolClassifierTest, CompilesNamedPatterns) {
  SymbolClassifier classifier = MakeHeadingClassifier();
  auto named = classifier.CompileNamedPattern("north (north|east)* south");
  ASSERT_TRUE(named.ok()) << named.status().ToString();
  Dfa a = CompileStreamingDfa(named.value(), classifier.alphabet_size());
  Dfa b = CompileStreamingDfa(NorthToSouthReversalPattern(),
                              kHeadingSymbolCount);
  Rng rng(32);
  std::vector<int> stream;
  for (int i = 0; i < 500; ++i) {
    stream.push_back(static_cast<int>(rng.UniformInt(0, 4)));
  }
  EXPECT_EQ(Detect(a, stream), Detect(b, stream));
}

TEST(SymbolClassifierTest, UnknownNameRejected) {
  SymbolClassifier classifier = MakeHeadingClassifier();
  EXPECT_FALSE(classifier.CompileNamedPattern("north upward").ok());
}

TEST(SymbolClassifierTest, NamesRoundTrip) {
  SymbolClassifier classifier = MakeHeadingClassifier();
  EXPECT_EQ(classifier.SymbolOf("south"), 2);
  EXPECT_EQ(classifier.NameOf(2), "south");
  EXPECT_EQ(classifier.SymbolOf("other"), classifier.other_symbol());
  EXPECT_EQ(classifier.SymbolOf("nope"), -1);
}

// Threshold sweep as a property: precision at theta is within [0, 1] and
// forecast counts decrease (or intervals widen) with theta.
class ThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdSweep, ScoresAreSane) {
  double theta = GetParam();
  Pattern r = Pattern::Seq({Pattern::Symbol(0), Pattern::Symbol(2)});
  Dfa dfa = CompileStreamingDfa(r, 3);
  Rng rng(8);
  std::vector<int> stream;
  for (int i = 0; i < 10000; ++i) {
    stream.push_back(static_cast<int>(rng.UniformInt(0, 2)));
  }
  MarkovInputModel input(3, 1);
  input.Fit(stream);
  ForecastScore score = ScoreForecasts(dfa, input, stream, theta, 50);
  EXPECT_GE(score.precision, 0.0);
  EXPECT_LE(score.precision, 1.0);
  if (score.forecasts > 0) {
    EXPECT_GE(score.mean_spread, 1.0);
    // Precision should be at least in the ballpark of theta (the model
    // is fitted on the same stream).
    EXPECT_GT(score.precision, theta * 0.6);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThresholdSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

}  // namespace
}  // namespace tcmf::cep
