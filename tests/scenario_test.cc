#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "mlog/partitioned.h"
#include "scenario/arrival.h"
#include "scenario/chaos.h"
#include "scenario/clock.h"
#include "scenario/fleet.h"
#include "scenario/histogram.h"
#include "scenario/scenario.h"

namespace tcmf::scenario {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = "scenario_test_logs/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------- arrivals

TEST(ArrivalScheduleTest, ConstantIsExactlyEvenlySpaced) {
  ArrivalSchedule schedule(ArrivalCurve::Constant(1000.0), /*seed=*/1);
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_EQ(schedule.NextArrivalUs(), k * 1000);  // 1000/s = every 1ms
  }
}

TEST(ArrivalScheduleTest, PoissonIsSeededAndHitsTheMeanRate) {
  ArrivalSchedule a(ArrivalCurve::Poisson(1000.0), 42);
  ArrivalSchedule b(ArrivalCurve::Poisson(1000.0), 42);
  ArrivalSchedule c(ArrivalCurve::Poisson(1000.0), 43);

  int64_t prev = -1;
  int64_t last = 0;
  bool differs_from_c = false;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const int64_t at = a.NextArrivalUs();
    EXPECT_EQ(at, b.NextArrivalUs());  // same seed -> same timeline
    if (at != c.NextArrivalUs()) differs_from_c = true;
    EXPECT_GE(at, prev);  // offsets are nondecreasing
    prev = at;
    last = at;
  }
  EXPECT_TRUE(differs_from_c);
  // 20k arrivals at 1000/s should span ~20s of scenario time.
  const double mean_gap_us = static_cast<double>(last) / kDraws;
  EXPECT_NEAR(mean_gap_us, 1000.0, 100.0);
}

TEST(ArrivalScheduleTest, DiurnalCurveShape) {
  const ArrivalCurve curve = ArrivalCurve::Diurnal(
      /*trough_rate_per_s=*/500.0, /*period_ms=*/1000, /*peak_factor=*/4.0);
  EXPECT_DOUBLE_EQ(curve.RateAtMs(0), 500.0);        // trough at t = 0
  EXPECT_NEAR(curve.RateAtMs(500), 2000.0, 1e-6);    // peak at period/2
  EXPECT_DOUBLE_EQ(curve.MeanRatePerS(), 1250.0);    // (1 + 4)/2 x trough
  EXPECT_DOUBLE_EQ(ArrivalCurve::Constant(9.0).MeanRatePerS(), 9.0);
}

TEST(ArrivalScheduleTest, DiurnalArrivalsClusterAroundThePeak) {
  const ArrivalCurve curve = ArrivalCurve::Diurnal(500.0, 1000, 4.0);
  ArrivalSchedule schedule(curve, 7);
  // Split each period into the peak-centered half [250ms, 750ms) and the
  // trough-centered rest; the peak half must carry most of the load.
  int64_t peak_half = 0, trough_half = 0;
  int64_t prev = -1;
  for (;;) {
    const int64_t at = schedule.NextArrivalUs();
    EXPECT_GE(at, prev);
    prev = at;
    if (at >= 4'000'000) break;  // four periods
    const int64_t in_period_ms = (at / 1000) % 1000;
    (in_period_ms >= 250 && in_period_ms < 750 ? peak_half : trough_half)++;
  }
  EXPECT_GT(peak_half, 2 * trough_half);
  // Sanity: the totals track the mean rate (1250/s over 4s).
  EXPECT_NEAR(static_cast<double>(peak_half + trough_half), 5000.0, 500.0);
}

TEST(ArrivalScheduleTest, ModelNames) {
  EXPECT_STREQ(ArrivalModelName(ArrivalModel::kConstant), "constant");
  EXPECT_STREQ(ArrivalModelName(ArrivalModel::kPoisson), "poisson");
  EXPECT_STREQ(ArrivalModelName(ArrivalModel::kDiurnal), "diurnal");
}

// ------------------------------------------------------------------ clock

TEST(ScenarioClockTest, VirtualClockAdvancesAndNeverRewinds) {
  VirtualClock clock(/*start_us=*/100);
  EXPECT_EQ(clock.NowUs(), 100);
  clock.SleepUntilUs(5000);
  EXPECT_EQ(clock.NowUs(), 5000);
  clock.SleepUntilUs(400);  // past deadline: no-op, time is monotone
  EXPECT_EQ(clock.NowUs(), 5000);
  clock.AdvanceUs(250);
  EXPECT_EQ(clock.NowUs(), 5250);
  EXPECT_EQ(clock.NowMs(), 5);
  clock.SleepForUs(750);
  EXPECT_EQ(clock.NowUs(), 6000);
}

TEST(ScenarioClockTest, SystemClockIsMonotone) {
  Clock* clock = RealClock();
  const int64_t t0 = clock->NowUs();
  clock->SleepForUs(2000);
  const int64_t t1 = clock->NowUs();
  EXPECT_GE(t1 - t0, 2000);
}

// -------------------------------------------------------------- histogram

TEST(ScenarioHistogramTest, SmallValuesAreExact) {
  LatencyHistogram hist;
  for (int64_t v : {5, 5, 5, 9, 60}) hist.RecordUs(v);
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.max_us(), 60u);
  EXPECT_DOUBLE_EQ(hist.MeanUs(), (5 + 5 + 5 + 9 + 60) / 5.0);
  // Values < 64us land in unit-width buckets: quantiles are exact.
  EXPECT_EQ(hist.ValueAtQuantileUs(0.50), 5u);
  EXPECT_EQ(hist.ValueAtQuantileUs(0.80), 9u);
  EXPECT_EQ(hist.ValueAtQuantileUs(1.00), 60u);
  hist.RecordUs(-17);  // clamped to 0, not dropped
  EXPECT_EQ(hist.count(), 6u);
  EXPECT_EQ(hist.ValueAtQuantileUs(0.0), 0u);
}

TEST(ScenarioHistogramTest, QuantilesWithinLogBucketErrorBound) {
  LatencyHistogram hist;
  for (int64_t v = 1; v <= 100000; ++v) hist.RecordUs(v);
  // Log-linear bucketing with 64 sub-buckets: <= ~1.6% relative error
  // (plus midpoint rounding) at any magnitude.
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const double expect = q * 100000;
    const double got = static_cast<double>(hist.ValueAtQuantileUs(q));
    EXPECT_NEAR(got, expect, expect * 0.02) << "q=" << q;
  }
  EXPECT_EQ(hist.max_us(), 100000u);
}

TEST(ScenarioHistogramTest, MergeMatchesRecordingIntoOne) {
  LatencyHistogram merged, a, b;
  for (int64_t v = 1; v <= 3000; ++v) {
    merged.RecordUs(v * 7);
    (v % 2 ? a : b).RecordUs(v * 7);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), merged.count());
  EXPECT_EQ(a.max_us(), merged.max_us());
  EXPECT_DOUBLE_EQ(a.MeanUs(), merged.MeanUs());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(a.ValueAtQuantileUs(q), merged.ValueAtQuantileUs(q));
  }
  EXPECT_EQ(a.ToJson(), merged.ToJson());
}

TEST(ScenarioHistogramTest, EmptyHistogram) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.ValueAtQuantileUs(0.99), 0u);
  EXPECT_DOUBLE_EQ(hist.MeanUs(), 0.0);
  EXPECT_NE(hist.ToJson().find("\"count\":0"), std::string::npos);
}

// --------------------------------------------------------------- timeline

TEST(ScenarioHistogramTest, LatencyTimelineFindsLastBreach) {
  LatencyTimeline timeline(/*window_ms=*/100);
  timeline.Record(50, 10'000);    // window [0, 100): fine
  timeline.Record(250, 80'000);   // window [200, 300): breach
  timeline.Record(430, 90'000);   // window [400, 500): breach
  timeline.Record(880, 20'000);   // window [800, 900): fine
  const uint64_t threshold_us = 50'000;
  EXPECT_EQ(timeline.LastBreachEndMs(0, threshold_us), 500);
  EXPECT_EQ(timeline.LastBreachEndMs(300, threshold_us), 500);
  EXPECT_EQ(timeline.LastBreachEndMs(500, threshold_us), -1);

  LatencyTimeline other(100);
  other.Record(650, 70'000);  // later breach, merged in by max
  timeline.Merge(other);
  EXPECT_EQ(timeline.LastBreachEndMs(0, threshold_us), 700);
}

// ------------------------------------------------------------------ fleet

TEST(ScenarioFleetTest, MixedFleetIsOrderedDeterministicAndComplete) {
  FleetMix mix;
  mix.vessel_count = 10;
  mix.flight_count = 3;
  mix.weather_cols = 3;
  mix.weather_rows = 2;
  mix.weather_interval_ms = 5 * kMillisPerMinute;
  mix.duration_ms = 20 * kMillisPerMinute;

  const std::vector<FleetEvent> events = MakeFleet(mix);
  ASSERT_FALSE(events.empty());

  std::set<std::string> sources;
  TimeMs prev = std::numeric_limits<TimeMs>::min();
  for (const FleetEvent& ev : events) {
    EXPECT_GE(ev.record.event_time(), prev);  // time-ordered feed
    prev = ev.record.event_time();
    sources.insert(ev.record.GetString("source").value_or("?"));
  }
  EXPECT_EQ(sources, (std::set<std::string>{"ais", "adsb", "weather"}));

  // Same mix, same feed — the open-loop driver's replay is reproducible.
  const std::vector<FleetEvent> again = MakeFleet(mix);
  ASSERT_EQ(again.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].key, events[i].key);
    EXPECT_EQ(again[i].record, events[i].record);
  }

  // Disabling a component removes exactly its source.
  FleetMix no_weather = mix;
  no_weather.weather_cols = 0;
  for (const FleetEvent& ev : MakeFleet(no_weather)) {
    EXPECT_NE(ev.record.GetString("source").value_or("?"), "weather");
  }
}

// ------------------------------------------------------------------ chaos

TEST(ChaosInjectorTest, VirtualClockPlanReplaysOnExactTimestamps) {
  VirtualClock clock(/*start_us=*/1'000'000);
  std::atomic<int64_t> slow_sink_us{0};
  std::atomic<uint64_t> key_rotation{0};
  std::atomic<uint64_t> restart_epochs[2] = {};

  ChaosTargets targets;
  targets.slow_sink_us = &slow_sink_us;
  targets.key_rotation = &key_rotation;
  targets.restart_epochs = restart_epochs;
  targets.partition_count = 2;
  FaultInjector injector(targets, &clock);

  FaultPlan plan;
  // Deliberately out of order: Run() sorts by at_ms.
  plan.Add({.kind = FaultKind::kSourceRestart, .at_ms = 500, .partition = 1});
  plan.Add({.kind = FaultKind::kSlowConsumer,
            .at_ms = 100,
            .duration_ms = 200,
            .stall_ms = 3});
  plan.Add({.kind = FaultKind::kSkewShift, .at_ms = 900, .key_offset = 11});

  const std::vector<FaultOutcome> outcomes =
      injector.Run(plan, /*start_us=*/1'000'000);
  ASSERT_EQ(outcomes.size(), 3u);

  // The virtual clock lands every injection on its scripted instant.
  EXPECT_EQ(outcomes[0].spec.kind, FaultKind::kSlowConsumer);
  EXPECT_EQ(outcomes[0].applied_at_ms, 100);
  EXPECT_EQ(outcomes[0].cleared_at_ms, 300);  // at + duration, exactly
  EXPECT_EQ(outcomes[1].spec.kind, FaultKind::kSourceRestart);
  EXPECT_EQ(outcomes[1].applied_at_ms, 500);
  EXPECT_EQ(outcomes[1].cleared_at_ms, 500);  // instantaneous
  EXPECT_EQ(outcomes[2].applied_at_ms, 900);
  EXPECT_EQ(clock.NowUs(), 1'000'000 + 900'000);

  // Windowed faults were disarmed, instantaneous ones left their mark.
  EXPECT_EQ(slow_sink_us.load(), 0);
  EXPECT_EQ(key_rotation.load(), 11u);
  EXPECT_EQ(restart_epochs[0].load(), 0u);
  EXPECT_EQ(restart_epochs[1].load(), 1u);

  const std::string json = outcomes[0].Json();
  EXPECT_NE(json.find("\"kind\":\"slow_consumer\""), std::string::npos);
  EXPECT_NE(json.find("\"applied_at_ms\":100"), std::string::npos);
  EXPECT_STREQ(FaultKindName(FaultKind::kFsyncStall), "fsync_stall");
  EXPECT_STREQ(FaultKindName(FaultKind::kAppendFault), "append_fault");
}

TEST(ChaosInjectorTest, ApplyAndClearDriveTheRealTopicHooks) {
  mlog::PartitionedLogOptions po;
  po.dir = TestDir("chaos_topic");
  po.partitions = 2;
  auto topic_or = mlog::PartitionedLog::Open(po);
  ASSERT_TRUE(topic_or.ok()) << topic_or.status().ToString();
  std::unique_ptr<mlog::PartitionedLog> topic = std::move(topic_or).value();

  // Keys pinned to each partition so faults can be aimed precisely.
  uint64_t key_p0 = 0, key_p1 = 0;
  for (uint64_t k = 0; key_p0 == 0 || key_p1 == 0; ++k) {
    (topic->PartitionFor(k) == 0 ? key_p0 : key_p1) = k + 1;
  }
  key_p0 -= 1;
  key_p1 -= 1;
  ASSERT_EQ(topic->PartitionFor(key_p0), 0u);
  ASSERT_EQ(topic->PartitionFor(key_p1), 1u);

  ChaosTargets targets;
  targets.topic = topic.get();
  FaultInjector injector(targets, nullptr);
  stream::Record rec;
  rec.set_event_time(1);

  // kAppendFault on partition 0: its appends fail, partition 1's don't.
  const FaultSpec fault{.kind = FaultKind::kAppendFault, .partition = 0};
  injector.Apply(fault);
  EXPECT_FALSE(topic->AppendKeyed(key_p0, rec).ok());
  EXPECT_TRUE(topic->AppendKeyed(key_p1, rec).ok());
  injector.Clear(fault);
  EXPECT_TRUE(topic->AppendKeyed(key_p0, rec).ok());

  // kFsyncStall on partition 1: appends stall and are counted there,
  // partition 0 is untouched.
  const FaultSpec stall{
      .kind = FaultKind::kFsyncStall, .partition = 1, .stall_ms = 10};
  injector.Apply(stall);
  Clock* clock = RealClock();
  const int64_t t0 = clock->NowUs();
  EXPECT_TRUE(topic->AppendKeyed(key_p1, rec).ok());
  EXPECT_GE(clock->NowUs() - t0, 10'000);
  injector.Clear(stall);
  EXPECT_TRUE(topic->AppendKeyed(key_p1, rec).ok());
  EXPECT_GE(topic->partition(1)->metrics().sync_stalls, 1u);
  EXPECT_EQ(topic->partition(0)->metrics().sync_stalls, 0u);
}

// -------------------------------------------------------------- scenarios

ScenarioOptions SmallScenario(const std::string& dir) {
  ScenarioOptions opts;
  opts.dir = TestDir(dir);
  opts.partitions = 2;
  opts.arrival = ArrivalCurve::Constant(4000.0);
  opts.total_records = 1200;
  opts.fleet.vessel_count = 8;
  opts.fleet.flight_count = 2;
  opts.fleet.weather_cols = 2;
  opts.fleet.weather_rows = 2;
  opts.fleet.duration_ms = 5 * kMillisPerMinute;
  // Generous budget: these tests assert delivery invariants, not
  // machine-dependent latency.
  opts.latency_budget_ms = 10'000;
  return opts;
}

TEST(ScenarioRunTest, SteadyRunDeliversEverythingExactlyOnce) {
  const ScenarioOptions opts = SmallScenario("steady");
  const ScenarioReport report = RunScenario(opts);

  EXPECT_EQ(report.error, "") << report.error;
  EXPECT_EQ(report.produced, 1200u);
  EXPECT_EQ(report.append_errors, 0u);
  EXPECT_EQ(report.appended, 1200u);
  EXPECT_EQ(report.consumed, 1200u);
  EXPECT_EQ(report.gaps, 0u);
  EXPECT_EQ(report.dups, 0u);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_EQ(report.arrival_model, "constant");
  EXPECT_DOUBLE_EQ(report.offered_rate_per_s, 4000.0);
  EXPECT_GT(report.run_s, 0.0);
  EXPECT_GT(report.achieved_rate_per_s, 0.0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  EXPECT_GE(report.max_ms, report.p999_ms);
  EXPECT_TRUE(report.p99_within_budget);
  EXPECT_EQ(report.disruption_ms, 0);
  EXPECT_EQ(report.recovery_ms, 0);

  const std::string json = report.Json();
  EXPECT_NE(json.find("\"arrival\":\"constant\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"consumed\":1200"), std::string::npos);
  EXPECT_NE(json.find("\"faults\":[]"), std::string::npos);
  // The pipeline's own merged report rides along, uptime included.
  EXPECT_NE(json.find("\"pipeline\":{"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_ms\":"), std::string::npos);
  EXPECT_NE(json.find("scenario.tail"), std::string::npos);
}

TEST(ScenarioRunTest, ChaosRunSurvivesRestartAndStallWithoutLoss) {
  const ScenarioOptions opts = SmallScenario("chaos");
  // 1200 records at 4000/s = a ~300ms schedule.
  FaultPlan plan;
  plan.Add({.kind = FaultKind::kSourceRestart, .at_ms = 60, .partition = 0});
  plan.Add({.kind = FaultKind::kFsyncStall,
            .at_ms = 120,
            .duration_ms = 60,
            .partition = 1,
            .stall_ms = 5});
  plan.Add({.kind = FaultKind::kSkewShift, .at_ms = 200, .key_offset = 3});
  const ScenarioReport report = RunScenario(opts, plan);

  EXPECT_EQ(report.error, "") << report.error;
  // Chaos must never break delivery: everything arrives exactly once
  // even across the mid-tail consumer restart.
  EXPECT_EQ(report.consumed, 1200u);
  EXPECT_EQ(report.gaps, 0u);
  EXPECT_EQ(report.dups, 0u);
  EXPECT_GE(report.restarts, 1u);
  EXPECT_GE(report.sync_stalls, 1u);
  ASSERT_EQ(report.faults.size(), 3u);
  EXPECT_EQ(report.faults[0].spec.kind, FaultKind::kSourceRestart);
  EXPECT_GE(report.faults[0].applied_at_ms, 60);

  const std::string json = report.Json();
  EXPECT_NE(json.find("\"kind\":\"source_restart\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"fsync_stall\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"skew_shift\""), std::string::npos);
}

}  // namespace
}  // namespace tcmf::scenario
