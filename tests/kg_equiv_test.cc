// Differential, property, and concurrency tests for the dictionary-
// encoded adjacency-indexed triplestore (rdf::AdjacencyIndex,
// rdf::Dictionary, rdf::EvaluateBgp, store::KnowledgeStore adjacency
// plans) plus the stream-enrichment stages (rdf::TripleGeneratorStage,
// rdf::SemanticTrajectoryStage, store::KgStoreSink). The differential
// suites enforce the core invariant of the refactor: the reordering BGP
// matcher and the adjacency star-join plans return exactly the bindings
// the scan-order reference evaluators do.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "rdf/adjacency.h"
#include "rdf/bgp.h"
#include "rdf/graph.h"
#include "rdf/semantic_trajectory.h"
#include "rdf/stages.h"
#include "rdf/vocab.h"
#include "store/kgstore.h"
#include "store/stages.h"
#include "stream/pipeline.h"
#include "synopses/critical_points.h"

namespace tcmf {
namespace {

using rdf::Binding;
using rdf::EncodedTriple;
using rdf::Graph;
using rdf::Iri;
using rdf::PatternTerm;
using rdf::Term;
using rdf::Triple;
using rdf::TriplePattern;

// ------------------------------------------------------ Dictionary

TEST(DictionaryPropertyTest, RandomTermsRoundTripWithDenseStableIds) {
  Rng rng(101);
  rdf::Dictionary dict;
  std::vector<Term> terms;
  for (int i = 0; i < 2000; ++i) {
    int pick = rng.UniformInt(0, 2);
    Term t;
    if (pick == 0) {
      t = Iri("http://x/e/" + std::to_string(rng.UniformInt(0, 500)));
    } else if (pick == 1) {
      t = rdf::Literal(std::to_string(rng.UniformInt(0, 500)));
    } else {
      t = rdf::TypedLiteral(std::to_string(rng.Uniform(0.0, 1.0)),
                            rdf::vocab::kWktLiteral);
    }
    terms.push_back(t);
  }
  std::map<uint64_t, Term> by_id;
  uint64_t max_id = 0;
  for (const Term& t : terms) {
    uint64_t id = dict.Encode(t);
    ASSERT_NE(id, rdf::Dictionary::kNoId);
    // Stability: re-encoding returns the same id; Lookup agrees.
    EXPECT_EQ(dict.Encode(t), id);
    EXPECT_EQ(dict.Lookup(t), id);
    auto [it, inserted] = by_id.try_emplace(id, t);
    if (!inserted) EXPECT_EQ(it->second, t);  // ids are injective
    max_id = std::max(max_id, id);
    // Round trip through Decode.
    auto back = dict.Decode(id);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  // Density: ids are exactly 1..size with no holes.
  EXPECT_EQ(max_id, dict.size());
  EXPECT_EQ(by_id.size(), dict.size());
}

TEST(DictionaryPropertyTest, LookupNeverInterns) {
  rdf::Dictionary dict;
  EXPECT_EQ(dict.Lookup(Iri("http://x/never")), rdf::Dictionary::kNoId);
  EXPECT_EQ(dict.size(), 0u);
}

TEST(DictionaryPropertyTest, DistinctKindsSameLexicalGetDistinctIds) {
  rdf::Dictionary dict;
  uint64_t iri = dict.Encode(Iri("42"));
  uint64_t lit = dict.Encode(rdf::Literal("42"));
  uint64_t typed = dict.Encode(rdf::TypedLiteral("42", "http://t/int"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, typed);
  EXPECT_NE(iri, typed);
}

// -------------------------------------------------- AdjacencyIndex

TEST(KgAdjacencyIndexTest, PostingsMatchInputMultiset) {
  Rng rng(7);
  std::vector<EncodedTriple> triples;
  for (int i = 0; i < 3000; ++i) {
    triples.push_back({static_cast<uint64_t>(rng.UniformInt(1, 50)),
                       static_cast<uint64_t>(rng.UniformInt(1, 6)),
                       static_cast<uint64_t>(rng.UniformInt(1, 80))});
  }
  rdf::AdjacencyIndex index;
  index.Build(triples);
  EXPECT_EQ(index.size(), triples.size());
  // Every (s,o) under p is present with its multiplicity, both ways.
  std::multiset<std::tuple<uint64_t, uint64_t, uint64_t>> expect, got_so,
      got_os;
  for (const auto& t : triples) expect.insert({t.p, t.s, t.o});
  for (uint64_t p : index.predicates()) {
    auto [lo, hi] = index.Subjects(p);
    for (const rdf::Posting* e = lo; e != hi; ++e) {
      got_so.insert({p, e->key, e->value});
      EXPECT_TRUE(e == lo || !(e->key < (e - 1)->key));  // sorted by (s,o)
    }
    auto [olo, ohi] = index.Objects(p);
    for (const rdf::Posting* e = olo; e != ohi; ++e) {
      got_os.insert({p, e->value, e->key});
    }
  }
  EXPECT_EQ(got_so, expect);
  EXPECT_EQ(got_os, expect);
}

TEST(KgAdjacencyIndexTest, StatsAndEstimatesAreConsistent) {
  std::vector<EncodedTriple> triples = {
      {1, 10, 5}, {1, 10, 6}, {2, 10, 5}, {3, 11, 7}, {3, 11, 7},
  };
  rdf::AdjacencyIndex index;
  index.Build(triples);
  const rdf::PredicateStats* s10 = index.Stats(10);
  ASSERT_NE(s10, nullptr);
  EXPECT_EQ(s10->triples, 3u);
  EXPECT_EQ(s10->distinct_subjects, 2u);
  EXPECT_EQ(s10->distinct_objects, 2u);
  // (?s, 10, ?o) estimates the predicate's triple count.
  EXPECT_DOUBLE_EQ(index.EstimateCardinality(false, 10, true, false), 3.0);
  // (s, 10, ?o): triples / distinct subjects.
  EXPECT_DOUBLE_EQ(index.EstimateCardinality(true, 10, true, false), 1.5);
  // Unknown predicate: nothing can match.
  EXPECT_DOUBLE_EQ(index.EstimateCardinality(false, 999, true, false), 0.0);
  // Free predicate, all free: whole graph.
  EXPECT_DOUBLE_EQ(index.EstimateCardinality(false, 0, false, false), 5.0);
}

TEST(KgAdjacencyIndexTest, RunLookupsFindExactRanges) {
  std::vector<EncodedTriple> triples = {
      {1, 10, 5}, {1, 10, 6}, {2, 10, 9}, {4, 10, 1}};
  rdf::AdjacencyIndex index;
  index.Build(triples);
  auto [lo, hi] = index.ObjectsOf(10, 1);
  ASSERT_EQ(hi - lo, 2);
  EXPECT_EQ(lo->value, 5u);
  EXPECT_EQ((lo + 1)->value, 6u);
  auto [slo, shi] = index.SubjectsOf(10, 9);
  ASSERT_EQ(shi - slo, 1);
  EXPECT_EQ(slo->value, 2u);
  auto [mlo, mhi] = index.ObjectsOf(10, 3);  // absent subject
  EXPECT_EQ(mlo, mhi);
}

// --------------------------------------------------- BGP equivalence

// Canonical form of a binding set: sorted vector of sorted (var,id)
// lists — multiset comparison independent of evaluation order.
std::vector<std::vector<std::pair<std::string, uint64_t>>> Canon(
    const std::vector<Binding>& bindings) {
  std::vector<std::vector<std::pair<std::string, uint64_t>>> out;
  out.reserve(bindings.size());
  for (const Binding& b : bindings) {
    std::vector<std::pair<std::string, uint64_t>> row(b.begin(), b.end());
    std::sort(row.begin(), row.end());
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Fills a random graph over small id universes (dense enough that joins
// actually join). Graph owns a mutex (lazy index build) so it is
// neither copyable nor movable — fill in place.
void FillRandomGraph(uint64_t seed, int triples, Graph* g) {
  Rng rng(seed);
  for (int i = 0; i < triples; ++i) {
    g->Add({Iri("http://x/s/" + std::to_string(rng.UniformInt(0, 30))),
            Iri("http://x/p/" + std::to_string(rng.UniformInt(0, 4))),
            Iri("http://x/o/" + std::to_string(rng.UniformInt(0, 20)))});
  }
}

PatternTerm RandomSlot(Rng& rng, const std::string& universe, int max_id,
                       const std::vector<std::string>& vars) {
  if (rng.UniformInt(0, 2) == 0) {
    return PatternTerm::Var(vars[rng.UniformInt(0, vars.size() - 1)]);
  }
  return PatternTerm::Const(
      Iri("http://x/" + universe + "/" + std::to_string(rng.UniformInt(0, max_id))));
}

TEST(BgpEquivTest, ReorderedMatcherEqualsInOrderReferenceOnRandomInputs) {
  const std::vector<std::string> vars = {"a", "b", "c", "d"};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Graph g;
    FillRandomGraph(seed, 400, &g);
    Rng rng(1000 + seed);
    for (int q = 0; q < 10; ++q) {
      std::vector<TriplePattern> patterns;
      const int n = rng.UniformInt(1, 3);
      for (int i = 0; i < n; ++i) {
        patterns.push_back({RandomSlot(rng, "s", 32, vars),
                            RandomSlot(rng, "p", 5, vars),
                            RandomSlot(rng, "o", 22, vars)});
      }
      auto reordered = Canon(rdf::EvaluateBgp(g, patterns));
      auto reference = Canon(rdf::EvaluateBgpInOrder(g, patterns));
      ASSERT_EQ(reordered, reference)
          << "seed=" << seed << " query=" << q;
    }
  }
}

TEST(BgpEquivTest, PlanOrderIsAPermutation) {
  Graph g;
  FillRandomGraph(3, 300, &g);
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var("a"), PatternTerm::Var("b"), PatternTerm::Var("c")},
      {PatternTerm::Var("a"), PatternTerm::Const(Iri("http://x/p/0")),
       PatternTerm::Var("d")},
      {PatternTerm::Var("d"), PatternTerm::Var("e"), PatternTerm::Var("f")},
  };
  std::vector<size_t> order = rdf::PlanBgpOrder(g, patterns);
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<size_t>{0, 1, 2}));
}

TEST(BgpEquivTest, SelectivePatternRunsFirst) {
  Graph g;
  // Predicate "rare" has 1 triple; "common" has 100.
  g.Add({Iri("http://x/s/0"), Iri("http://x/rare"), Iri("http://x/o/0")});
  for (int i = 0; i < 100; ++i) {
    g.Add({Iri("http://x/s/" + std::to_string(i)), Iri("http://x/common"),
           Iri("http://x/o/" + std::to_string(i))});
  }
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var("s"), PatternTerm::Const(Iri("http://x/common")),
       PatternTerm::Var("o")},
      {PatternTerm::Var("s"), PatternTerm::Const(Iri("http://x/rare")),
       PatternTerm::Var("o2")},
  };
  std::vector<size_t> order = rdf::PlanBgpOrder(g, patterns);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // the rare pattern leads
  // And the join result is the single subject carrying both predicates.
  auto bindings = rdf::EvaluateBgp(g, patterns);
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].at("s"),
            g.dictionary().Lookup(Iri("http://x/s/0")));
}

TEST(BgpEquivTest, UnInternedConstantShortCircuits) {
  Graph g;
  FillRandomGraph(5, 200, &g);
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var("s"), PatternTerm::Var("p"), PatternTerm::Var("o")},
      {PatternTerm::Var("s"), PatternTerm::Const(Iri("http://x/absent")),
       PatternTerm::Var("o2")},
  };
  // The absent-constant pattern estimates 0 and must be evaluated first,
  // so the whole BGP is empty without enumerating the wildcard pattern.
  std::vector<size_t> order = rdf::PlanBgpOrder(g, patterns);
  EXPECT_EQ(order[0], 1u);
  EXPECT_TRUE(rdf::EvaluateBgp(g, patterns).empty());
}

// ------------------------------------------- KnowledgeStore plans

class KgAdjacencyPlanTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 300;

  KgAdjacencyPlanTest()
      : encoder_({0.0, 35.0, 10.0, 44.0}, 8, 0, kMillisPerHour),
        store_(encoder_, 4) {
    Rng rng(17);
    for (size_t i = 0; i < kNodes; ++i) {
      rdf::Term node = Iri("http://x/node/" + std::to_string(i));
      store_.AddPositionNode(node, rng.Uniform(0.0, 10.0),
                             rng.Uniform(35.0, 44.0),
                             static_cast<TimeMs>(rng.Uniform(
                                 0.0, 24.0 * kMillisPerHour)));
      store_.Add({node, Iri(rdf::vocab::kHasSpeed),
                  rdf::DoubleLiteral(rng.Uniform(0.0, 12.0))});
      // Clustered entity attribute: only every 5th node carries heading,
      // so the adjacency plan's stats pick it as the driver.
      if (i % 5 == 0) {
        store_.Add({node, Iri(rdf::vocab::kHasHeading),
                    rdf::DoubleLiteral(rng.Uniform(0.0, 360.0))});
      }
    }
    store_.Compile();
    query_.predicate_ids = {
        store_.dictionary().Lookup(Iri(rdf::vocab::kHasSpeed)),
        store_.dictionary().Lookup(Iri(rdf::vocab::kHasHeading)),
        store_.dictionary().Lookup(Iri(rdf::vocab::kHasTimestamp)),
    };
  }

  static std::vector<store::StarRow> Sorted(std::vector<store::StarRow> rows) {
    std::sort(rows.begin(), rows.end(),
              [](const store::StarRow& a, const store::StarRow& b) {
                return a.subject < b.subject;
              });
    return rows;
  }

  static void ExpectSameRows(const std::vector<store::StarRow>& a,
                             const std::vector<store::StarRow>& b) {
    auto sa = Sorted(a), sb = Sorted(b);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].subject, sb[i].subject);
      EXPECT_EQ(sa[i].objects, sb[i].objects);
    }
  }

  geom::StCellEncoder encoder_;
  store::KnowledgeStore store_;
  store::StarQuery query_;
};

TEST_F(KgAdjacencyPlanTest, AdjacencyPlanMatchesScanAndVertical) {
  auto scan = store_.RunStar(query_, store::StarPlan::kTriplesTableScan,
                             nullptr);
  auto vertical =
      store_.RunStar(query_, store::StarPlan::kVerticalPartition, nullptr);
  auto adjacency =
      store_.RunStar(query_, store::StarPlan::kAdjacencyIndex, nullptr);
  EXPECT_EQ(scan.size(), kNodes / 5);  // heading is the limiting predicate
  ExpectSameRows(scan, adjacency);
  ExpectSameRows(vertical, adjacency);
}

TEST_F(KgAdjacencyPlanTest, AdjacencyPlansMatchUnderStConstraint) {
  store::StarQuery q = query_;
  q.has_st_constraint = true;
  q.st_box.bounds = {2.0, 38.0, 6.0, 42.0};
  q.st_box.t_begin = 4 * kMillisPerHour;
  q.st_box.t_end = 16 * kMillisPerHour;
  auto scan = store_.RunStar(q, store::StarPlan::kTriplesTableScan, nullptr);
  auto adjacency =
      store_.RunStar(q, store::StarPlan::kAdjacencyIndex, nullptr);
  auto pushdown =
      store_.RunStar(q, store::StarPlan::kAdjacencyIndexPushdown, nullptr);
  ExpectSameRows(scan, adjacency);
  ExpectSameRows(scan, pushdown);
}

TEST_F(KgAdjacencyPlanTest, AdjacencyPlanScansFarLessThanTableScan) {
  store::StarQueryMetrics scan, adjacency;
  store_.RunStar(query_, store::StarPlan::kTriplesTableScan, &scan);
  store_.RunStar(query_, store::StarPlan::kAdjacencyIndex, &adjacency);
  // The scan visits every triple; the adjacency plan visits the driver
  // predicate's postings plus one probe per (driver subject, slot).
  EXPECT_LT(adjacency.triples_scanned, scan.triples_scanned / 2);
}

TEST_F(KgAdjacencyPlanTest, AdjacencyPushdownPrunesExactFilters) {
  store::StarQuery q = query_;
  q.has_st_constraint = true;
  q.st_box.bounds = {2.0, 38.0, 6.0, 42.0};
  q.st_box.t_begin = 4 * kMillisPerHour;
  q.st_box.t_end = 16 * kMillisPerHour;
  store::StarQueryMetrics plain, pushdown;
  store_.RunStar(q, store::StarPlan::kAdjacencyIndex, &plain);
  store_.RunStar(q, store::StarPlan::kAdjacencyIndexPushdown, &pushdown);
  EXPECT_LT(pushdown.st_filter_evaluations,
            std::max<size_t>(1, plain.st_filter_evaluations));
}

TEST_F(KgAdjacencyPlanTest, CountersAccumulateAcrossQueries) {
  store::StoreCounters before = store_.CountersSnapshot();
  EXPECT_EQ(before.triples_added, store_.size());
  auto rows = store_.RunStar(query_, store::StarPlan::kAdjacencyIndex,
                             nullptr);
  store::StoreCounters after = store_.CountersSnapshot();
  EXPECT_EQ(after.star_queries, before.star_queries + 1);
  EXPECT_EQ(after.star_rows, before.star_rows + rows.size());
  EXPECT_GT(after.triples_scanned, before.triples_scanned);
}

TEST_F(KgAdjacencyPlanTest, StreamedStCellTriplesFeedPushdownIndex) {
  // Ingesting hasStCell integer triples through plain Add (the streamed
  // template path, not AddPositionNode) must keep the pushdown usable.
  geom::StCellEncoder encoder({0.0, 35.0, 10.0, 44.0}, 8, 0, kMillisPerHour);
  store::KnowledgeStore store(encoder, 2);
  rdf::Term node = Iri("http://x/streamed/1");
  const double lon = 3.0, lat = 39.0;
  const TimeMs t = 6 * kMillisPerHour;
  store.Add({node, Iri(rdf::vocab::kHasStCell),
             rdf::IntLiteral(static_cast<int64_t>(encoder.Encode(lon, lat, t)))});
  store.Add({node, Iri(rdf::vocab::kAsWKT),
             rdf::TypedLiteral("POINT (3.000000 39.000000)",
                               rdf::vocab::kWktLiteral)});
  store.Add({node, Iri(rdf::vocab::kHasTimestamp), rdf::IntLiteral(t)});
  store.Add({node, Iri(rdf::vocab::kHasSpeed), rdf::DoubleLiteral(5.0)});
  store.Compile();
  store::StarQuery q;
  q.predicate_ids = {
      store.dictionary().Lookup(Iri(rdf::vocab::kHasSpeed)),
      store.dictionary().Lookup(Iri(rdf::vocab::kHasTimestamp)),
  };
  q.has_st_constraint = true;
  q.st_box.bounds = {2.0, 38.0, 6.0, 42.0};
  q.st_box.t_begin = 4 * kMillisPerHour;
  q.st_box.t_end = 16 * kMillisPerHour;
  auto rows =
      store.RunStar(q, store::StarPlan::kAdjacencyIndexPushdown, nullptr);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].subject, store.dictionary().Lookup(node));
}

// ------------------------------------------------- Concurrency (TSan)

TEST(KgConcurrentTest, ConcurrentReadersShareLazyIndexBuild) {
  Graph g;
  FillRandomGraph(23, 2000, &g);
  // The index is dirty: every reader races to trigger the first build.
  const uint64_t p0 = g.dictionary().Lookup(Iri("http://x/p/0"));
  std::atomic<size_t> total{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      size_t n = 0;
      g.Match(0, p0, 0, [&](const EncodedTriple&) { ++n; });
      n += g.Count(0, p0, 0);
      total.fetch_add(n);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 8 * 2 * g.Count(0, p0, 0));
}

TEST(KgConcurrentTest, ConcurrentBgpEvaluationIsStable) {
  Graph g;
  FillRandomGraph(29, 1000, &g);
  std::vector<TriplePattern> patterns = {
      {PatternTerm::Var("s"), PatternTerm::Const(Iri("http://x/p/1")),
       PatternTerm::Var("o")},
      {PatternTerm::Var("s"), PatternTerm::Const(Iri("http://x/p/2")),
       PatternTerm::Var("o2")},
  };
  auto expected = Canon(rdf::EvaluateBgp(g, patterns));
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      if (Canon(rdf::EvaluateBgp(g, patterns)) != expected) ++mismatches;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KgConcurrentTest, ConcurrentRunStarAfterCompile) {
  geom::StCellEncoder encoder({0.0, 35.0, 10.0, 44.0}, 8, 0, kMillisPerHour);
  store::KnowledgeStore store(encoder, 4);
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    rdf::Term node = Iri("http://x/c/" + std::to_string(i));
    store.AddPositionNode(node, rng.Uniform(0.0, 10.0),
                          rng.Uniform(35.0, 44.0),
                          static_cast<TimeMs>(rng.Uniform(0.0, 86400000.0)));
    store.Add({node, Iri(rdf::vocab::kHasSpeed), rdf::DoubleLiteral(1.0)});
  }
  store.Compile();
  store::StarQuery q;
  q.predicate_ids = {
      store.dictionary().Lookup(Iri(rdf::vocab::kHasSpeed)),
      store.dictionary().Lookup(Iri(rdf::vocab::kHasTimestamp)),
  };
  const size_t expected =
      store.RunStar(q, store::StarPlan::kAdjacencyIndex, nullptr).size();
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < 8; ++i) {
    const auto plan = (i % 2 == 0) ? store::StarPlan::kAdjacencyIndex
                                   : store::StarPlan::kVerticalPartition;
    threads.emplace_back([&, plan] {
      store::StarQueryMetrics m;
      if (store.RunStar(q, plan, &m).size() != expected) ++mismatches;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(store.CountersSnapshot().star_queries, 9u);
}

// ------------------------------------------------- Enrichment stages

std::vector<stream::Record> MakePositionRecords(int n) {
  std::vector<stream::Record> records;
  for (int i = 0; i < n; ++i) {
    Position p;
    p.entity_id = 100 + (i % 7);
    p.t = i * 1000;
    p.lon = 2.0 + 0.001 * i;
    p.lat = 41.0;
    p.speed_mps = 5.0;
    p.heading_deg = 90.0;
    records.push_back(stream::PositionToRecord(p));
  }
  return records;
}

TEST(KgStageTest, TripleGeneratorStageMatchesBatchGeneration) {
  rdf::GraphTemplate tmpl;
  rdf::VariableVector vars;
  rdf::MakePositionTemplate("http://x/", &tmpl, &vars);
  std::vector<stream::Record> records = MakePositionRecords(50);

  // Batch reference.
  rdf::TripleGenerator gen(tmpl, vars);
  rdf::VectorConnector conn(records);
  std::multiset<std::string> expected;
  gen.Run(conn, [&](const Triple& t) {
    expected.insert(t.s.lexical + "|" + t.p.lexical + "|" + t.o.lexical);
  });

  // Fused stage.
  stream::Pipeline pipeline;
  std::vector<Triple> out;
  rdf::TripleGeneratorStage(
      stream::Flow<stream::Record>::FromVector(&pipeline, records),
      std::move(tmpl), std::move(vars))
      .CollectInto(&out);
  pipeline.Run();

  std::multiset<std::string> got;
  for (const Triple& t : out) {
    got.insert(t.s.lexical + "|" + t.p.lexical + "|" + t.o.lexical);
  }
  EXPECT_EQ(got, expected);
}

TEST(KgStageTest, KgStoreSinkPopulatesStoreAndReportsKgMetrics) {
  rdf::GraphTemplate tmpl;
  rdf::VariableVector vars;
  rdf::MakePositionTemplate("http://x/", &tmpl, &vars);
  std::vector<stream::Record> records = MakePositionRecords(40);

  geom::StCellEncoder encoder({0.0, 35.0, 10.0, 44.0}, 8, 0, kMillisPerHour);
  store::KnowledgeStore store(encoder, 4);
  stream::Pipeline pipeline;
  store::KgStoreSink(
      rdf::TripleGeneratorStage(
          stream::Flow<stream::Record>::FromVector(&pipeline, records),
          tmpl, vars),
      &store);
  pipeline.Run();

  // 7 patterns per position record.
  EXPECT_EQ(store.size(), records.size() * 7);
  EXPECT_EQ(store.CountersSnapshot().triples_added, store.size());
  // The fix under test: kg_* counters must surface in ReportJson.
  std::string report = pipeline.ReportJson();
  EXPECT_NE(report.find("\"kg\":true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"kg_triples_added\":" +
                        std::to_string(store.size())),
            std::string::npos)
      << report;

  // The streamed store answers star queries after Compile.
  store.Compile();
  store::StarQuery q;
  q.predicate_ids = {
      store.dictionary().Lookup(Iri(rdf::vocab::kHasSpeed)),
      store.dictionary().Lookup(Iri(rdf::vocab::kHasTimestamp)),
  };
  auto rows = store.RunStar(q, store::StarPlan::kAdjacencyIndex, nullptr);
  EXPECT_EQ(rows.size(), records.size());  // one node per record
}

TEST(KgStageTest, SemanticTrajectoryStageMatchesBatchBuilder) {
  // Two entities with part-splitting critical point sequences.
  using synopses::CriticalPoint;
  using synopses::CriticalPointType;
  std::vector<CriticalPoint> cps;
  for (uint64_t e : {5u, 9u}) {
    for (int i = 0; i < 6; ++i) {
      CriticalPoint cp;
      cp.pos.entity_id = e;
      cp.pos.t = i * 60000;
      cp.pos.lon = 2.0 + 0.01 * i;
      cp.pos.lat = 41.0;
      cp.type = (i == 3) ? CriticalPointType::kGapEnd
                         : CriticalPointType::kChangeInHeading;
      cps.push_back(cp);
    }
  }

  // Batch reference through the Graph overload.
  Graph reference;
  std::multiset<std::string> expected;
  for (uint64_t e : {5u, 9u}) {
    std::vector<CriticalPoint> mine;
    for (const auto& cp : cps) {
      if (cp.pos.entity_id == e) mine.push_back(cp);
    }
    rdf::BuildSemanticTrajectory("http://x/", e, mine,
                                 [&](const Triple& t) {
                                   expected.insert(t.s.lexical + "|" +
                                                   t.p.lexical + "|" +
                                                   t.o.lexical);
                                 });
  }

  stream::Pipeline pipeline;
  std::vector<Triple> out;
  rdf::SemanticTrajectoryStage(
      stream::Flow<CriticalPoint>::FromVector(&pipeline, cps), "http://x/")
      .CollectInto(&out);
  pipeline.Run();
  std::multiset<std::string> got;
  for (const Triple& t : out) {
    got.insert(t.s.lexical + "|" + t.p.lexical + "|" + t.o.lexical);
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace tcmf
