#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "datagen/areas.h"
#include "datagen/flight.h"
#include "datagen/registry.h"
#include "datagen/vessel.h"
#include "datagen/weather.h"
#include "geom/geo.h"

namespace tcmf::datagen {
namespace {

const geom::BBox kExtent{-6.0, 35.0, 10.0, 44.0};

// ----------------------------------------------------------------- Areas

TEST(AreasTest, MakeRegionsCountAndKind) {
  Rng rng(1);
  auto regions = MakeRegions(rng, kExtent, 20, "protected", 5000, 30000);
  ASSERT_EQ(regions.size(), 20u);
  for (const auto& r : regions) {
    EXPECT_EQ(r.kind, "protected");
    EXPECT_FALSE(r.shape.empty());
    EXPECT_GE(r.shape.ring().size(), 6u);
  }
}

TEST(AreasTest, RegionsHaveUniqueIds) {
  Rng rng(2);
  auto regions = MakeRegions(rng, kExtent, 50, "fishing", 5000, 30000);
  std::set<uint64_t> ids;
  for (const auto& r : regions) ids.insert(r.id);
  EXPECT_EQ(ids.size(), 50u);
}

TEST(AreasTest, RegionContainsOwnCentroid) {
  Rng rng(3);
  auto regions = MakeRegions(rng, kExtent, 30, "x", 10000, 40000);
  int contained = 0;
  for (const auto& r : regions) {
    if (r.shape.Contains(r.shape.Centroid())) ++contained;
  }
  // Star-convex-ish construction: centroid inside for virtually all.
  EXPECT_GE(contained, 28);
}

TEST(AreasTest, PortsAreSmall) {
  Rng rng(4);
  auto ports = MakePorts(rng, kExtent, 10);
  ASSERT_EQ(ports.size(), 10u);
  for (const auto& p : ports) {
    EXPECT_EQ(p.kind, "port");
    EXPECT_LT(p.shape.bbox().width(), 0.2);
  }
}

TEST(AreasTest, SectorsTileExtent) {
  auto sectors = MakeSectors(kExtent, 4, 3);
  ASSERT_EQ(sectors.size(), 12u);
  // Every probe point inside the extent falls in exactly one sector.
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double lon = rng.Uniform(kExtent.min_lon + 0.01, kExtent.max_lon - 0.01);
    double lat = rng.Uniform(kExtent.min_lat + 0.01, kExtent.max_lat - 0.01);
    int hits = 0;
    for (const auto& s : sectors) {
      if (s.shape.Contains(lon, lat)) ++hits;
    }
    EXPECT_GE(hits, 1);
    EXPECT_LE(hits, 2);  // boundary points can double-count
  }
}

// -------------------------------------------------------------- Registry

TEST(RegistryTest, VesselMixRespectsFishingFraction) {
  Rng rng(6);
  auto fleet = MakeVesselRegistry(rng, 2000, 0.4);
  size_t fishing = 0;
  for (const auto& v : fleet) {
    if (v.type == VesselType::kFishing) ++fishing;
  }
  EXPECT_NEAR(static_cast<double>(fishing) / fleet.size(), 0.4, 0.05);
}

TEST(RegistryTest, VesselIdsUniqueAndFieldsPlausible) {
  Rng rng(7);
  auto fleet = MakeVesselRegistry(rng, 100);
  std::set<uint64_t> ids;
  for (const auto& v : fleet) {
    ids.insert(v.mmsi);
    EXPECT_GT(v.length_m, 0);
    EXPECT_GT(v.max_speed_mps, 0);
    EXPECT_FALSE(v.name.empty());
    EXPECT_FALSE(v.flag.empty());
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(RegistryTest, AircraftClassesCoverAll) {
  Rng rng(8);
  auto fleet = MakeAircraftRegistry(rng, 300);
  std::set<AircraftClass> seen;
  for (const auto& a : fleet) {
    seen.insert(a.cls);
    EXPECT_GT(a.cruise_speed_mps, 100);
    EXPECT_GT(a.cruise_alt_m, 4000);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RegistryTest, TypeNames) {
  EXPECT_STREQ(VesselTypeName(VesselType::kFishing), "fishing");
  EXPECT_STREQ(VesselTypeName(VesselType::kTanker), "tanker");
  EXPECT_STREQ(AircraftClassName(AircraftClass::kHeavy), "heavy");
}

// --------------------------------------------------------------- Weather

TEST(WeatherTest, SampleWithinBounds) {
  Rng rng(9);
  WeatherField field(rng, kExtent, 25.0);
  for (int i = 0; i < 200; ++i) {
    double lon = rng.Uniform(kExtent.min_lon, kExtent.max_lon);
    double lat = rng.Uniform(kExtent.min_lat, kExtent.max_lat);
    WeatherSample s = field.Sample(lon, lat, i * kMillisPerHour);
    EXPECT_LE(std::hypot(s.wind_east_mps, s.wind_north_mps), 25.0 + 1e-9);
    EXPECT_GE(s.severity, 0.0);
    EXPECT_LE(s.severity, 1.0);
    EXPECT_GT(s.wave_height_m, 0.0);
  }
}

TEST(WeatherTest, SmoothInSpace) {
  Rng rng(10);
  WeatherField field(rng, kExtent);
  WeatherSample a = field.Sample(2.0, 40.0, 0);
  WeatherSample b = field.Sample(2.001, 40.001, 0);
  EXPECT_NEAR(a.wind_east_mps, b.wind_east_mps, 0.2);
  EXPECT_NEAR(a.wind_north_mps, b.wind_north_mps, 0.2);
}

TEST(WeatherTest, VariesInTime) {
  Rng rng(11);
  WeatherField field(rng, kExtent);
  WeatherSample a = field.Sample(2.0, 40.0, 0);
  WeatherSample b = field.Sample(2.0, 40.0, 24 * kMillisPerHour);
  EXPECT_NE(a.wind_east_mps, b.wind_east_mps);
}

TEST(WeatherTest, DeterministicForSeed) {
  Rng rng1(12), rng2(12);
  WeatherField f1(rng1, kExtent), f2(rng2, kExtent);
  WeatherSample a = f1.Sample(3.0, 41.0, 5 * kMillisPerHour);
  WeatherSample b = f2.Sample(3.0, 41.0, 5 * kMillisPerHour);
  EXPECT_DOUBLE_EQ(a.wind_east_mps, b.wind_east_mps);
}

TEST(WeatherTest, ForecastGridShapeAndFields) {
  Rng rng(13);
  WeatherField field(rng, kExtent);
  auto grid = field.ForecastGrid(3 * kMillisPerHour, 8, 5);
  ASSERT_EQ(grid.size(), 40u);
  for (const auto& rec : grid) {
    EXPECT_TRUE(rec.Has("wind_east_mps"));
    EXPECT_TRUE(rec.Has("severity"));
    EXPECT_EQ(rec.GetInt("t").value(), 3 * kMillisPerHour);
    double lon = rec.GetNumeric("lon").value();
    EXPECT_GE(lon, kExtent.min_lon);
    EXPECT_LE(lon, kExtent.max_lon);
  }
}

// ---------------------------------------------------------------- Vessel

class VesselSimTest : public ::testing::Test {
 protected:
  VesselSimOutput Simulate(VesselSimConfig config) {
    Rng rng(100);
    auto ports = MakePorts(rng, config.extent, 6);
    auto fishing = MakeRegions(rng, config.extent, 4, "fishing", 15000, 40000);
    VesselSimulator sim(config, ports, fishing, nullptr);
    return sim.Run();
  }
};

TEST_F(VesselSimTest, ProducesAllVessels) {
  VesselSimConfig config;
  config.vessel_count = 10;
  config.duration_ms = kMillisPerHour;
  VesselSimOutput out = Simulate(config);
  EXPECT_EQ(out.registry.size(), 10u);
  EXPECT_EQ(out.truth.size(), 10u);
  for (const auto& traj : out.truth) EXPECT_FALSE(traj.empty());
}

TEST_F(VesselSimTest, StreamIsTimeOrdered) {
  VesselSimConfig config;
  config.vessel_count = 8;
  config.duration_ms = kMillisPerHour;
  VesselSimOutput out = Simulate(config);
  for (size_t i = 1; i < out.stream.size(); ++i) {
    EXPECT_LE(out.stream[i - 1].t, out.stream[i].t);
  }
}

TEST_F(VesselSimTest, TruthIsKinematicallyConsistent) {
  VesselSimConfig config;
  config.vessel_count = 5;
  config.duration_ms = 2 * kMillisPerHour;
  VesselSimOutput out = Simulate(config);
  for (const auto& traj : out.truth) {
    for (size_t i = 1; i < traj.points.size(); ++i) {
      const Position& a = traj.points[i - 1];
      const Position& b = traj.points[i];
      double dt = static_cast<double>(b.t - a.t) / kMillisPerSecond;
      double dist = geom::HaversineM(a.lon, a.lat, b.lon, b.lat);
      // Displacement should be explained by the reported speed (the
      // position was advanced with b's speed over the tick).
      EXPECT_LE(dist, 16.0 * dt + 50.0)
          << "vessel " << traj.entity_id << " step " << i;
    }
  }
}

TEST_F(VesselSimTest, GapsReduceStreamSize) {
  VesselSimConfig with_gaps;
  with_gaps.vessel_count = 10;
  with_gaps.duration_ms = 2 * kMillisPerHour;
  with_gaps.gap_probability = 0.05;
  VesselSimConfig no_gaps = with_gaps;
  no_gaps.gap_probability = 0.0;
  VesselSimOutput a = Simulate(with_gaps);
  VesselSimOutput b = Simulate(no_gaps);
  EXPECT_LT(a.stream.size(), b.stream.size());
  EXPECT_GT(a.reports_lost_to_gaps, 0u);
}

TEST_F(VesselSimTest, DeterministicForSeed) {
  VesselSimConfig config;
  config.vessel_count = 4;
  config.duration_ms = kMillisPerHour;
  VesselSimOutput a = Simulate(config);
  VesselSimOutput b = Simulate(config);
  ASSERT_EQ(a.stream.size(), b.stream.size());
  for (size_t i = 0; i < a.stream.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.stream[i].lon, b.stream[i].lon);
  }
}

TEST_F(VesselSimTest, PositionsStayNearExtent) {
  VesselSimConfig config;
  config.vessel_count = 10;
  config.duration_ms = 3 * kMillisPerHour;
  VesselSimOutput out = Simulate(config);
  for (const Position& p : out.stream) {
    EXPECT_GT(p.lon, config.extent.min_lon - 2.0);
    EXPECT_LT(p.lon, config.extent.max_lon + 2.0);
    EXPECT_GT(p.lat, config.extent.min_lat - 2.0);
    EXPECT_LT(p.lat, config.extent.max_lat + 2.0);
  }
}

TEST_F(VesselSimTest, FishingVesselsTurnMore) {
  VesselSimConfig config;
  config.vessel_count = 40;
  config.duration_ms = 4 * kMillisPerHour;
  config.fishing_fraction = 0.5;
  VesselSimOutput out = Simulate(config);
  double fishing_turn = 0.0, other_turn = 0.0;
  size_t fishing_n = 0, other_n = 0;
  for (size_t v = 0; v < out.registry.size(); ++v) {
    const auto& traj = out.truth[v];
    double total = 0.0;
    for (size_t i = 1; i < traj.points.size(); ++i) {
      total += std::fabs(geom::AngleDiffDeg(traj.points[i].heading_deg,
                                            traj.points[i - 1].heading_deg));
    }
    if (out.registry[v].type == VesselType::kFishing) {
      fishing_turn += total;
      ++fishing_n;
    } else {
      other_turn += total;
      ++other_n;
    }
  }
  ASSERT_GT(fishing_n, 0u);
  ASSERT_GT(other_n, 0u);
  EXPECT_GT(fishing_turn / fishing_n, 1.5 * other_turn / other_n);
}

// ---------------------------------------------------------------- Flight

class FlightSimTest : public ::testing::Test {
 protected:
  std::vector<SimulatedFlight> Simulate(FlightSimConfig config) {
    FlightSimulator sim(config, DefaultOriginAirport(),
                        DefaultDestinationAirport(), nullptr);
    return sim.Run();
  }
};

TEST_F(FlightSimTest, ProducesRequestedFlights) {
  FlightSimConfig config;
  config.flight_count = 10;
  auto flights = Simulate(config);
  ASSERT_EQ(flights.size(), 10u);
  for (const auto& f : flights) {
    EXPECT_FALSE(f.actual.points.empty());
    EXPECT_GE(f.plan.waypoints.size(), 4u);
  }
}

TEST_F(FlightSimTest, FlightsReachDestination) {
  FlightSimConfig config;
  config.flight_count = 8;
  auto flights = Simulate(config);
  geom::LonLat dest = DefaultDestinationAirport().loc;
  for (const auto& f : flights) {
    const Position& last = f.actual.points.back();
    EXPECT_LT(geom::HaversineM(last.lon, last.lat, dest.lon, dest.lat),
              30000.0)
        << "flight " << f.plan.flight_id;
  }
}

TEST_F(FlightSimTest, AltitudeProfileClimbsAndDescends) {
  FlightSimConfig config;
  config.flight_count = 5;
  auto flights = Simulate(config);
  for (const auto& f : flights) {
    double max_alt = 0.0;
    for (const Position& p : f.actual.points) {
      max_alt = std::max(max_alt, p.alt_m);
    }
    EXPECT_GT(max_alt, 4000.0);
    EXPECT_LT(f.actual.points.back().alt_m, max_alt * 0.3);
    EXPECT_LT(f.actual.points.front().alt_m, max_alt * 0.3);
  }
}

TEST_F(FlightSimTest, PlanEtasMonotone) {
  FlightSimConfig config;
  config.flight_count = 5;
  auto flights = Simulate(config);
  for (const auto& f : flights) {
    for (size_t i = 1; i < f.plan.waypoints.size(); ++i) {
      EXPECT_GT(f.plan.waypoints[i].eta, f.plan.waypoints[i - 1].eta);
    }
  }
}

TEST_F(FlightSimTest, AirwaysProduceRouteClusters) {
  FlightSimConfig config;
  config.flight_count = 30;
  config.airway_count = 3;
  auto flights = Simulate(config);
  std::set<int> airways;
  for (const auto& f : flights) airways.insert(f.plan.airway_id);
  EXPECT_GE(airways.size(), 2u);
  // Same-airway flights should be laterally much closer than
  // different-airway flights at mid-route.
  auto mid_point = [](const SimulatedFlight& f) {
    return f.actual.points[f.actual.points.size() / 2];
  };
  double same_sum = 0, diff_sum = 0;
  int same_n = 0, diff_n = 0;
  for (size_t i = 0; i < flights.size(); ++i) {
    for (size_t j = i + 1; j < flights.size(); ++j) {
      Position a = mid_point(flights[i]);
      Position b = mid_point(flights[j]);
      double d = geom::HaversineM(a.lon, a.lat, b.lon, b.lat);
      if (flights[i].plan.airway_id == flights[j].plan.airway_id) {
        same_sum += d;
        ++same_n;
      } else {
        diff_sum += d;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(diff_n, 0);
  EXPECT_LT(same_sum / same_n, diff_sum / diff_n);
}

TEST_F(FlightSimTest, WeatherCreatesDeviationsFromPlan) {
  FlightSimConfig config;
  config.flight_count = 12;
  config.seed = 77;
  Rng wrng(55);
  WeatherField weather(wrng, config.extent, 25.0);
  FlightSimulator with_weather(config, DefaultOriginAirport(),
                               DefaultDestinationAirport(), &weather);
  FlightSimulator without(config, DefaultOriginAirport(),
                          DefaultDestinationAirport(), nullptr);
  auto fw = with_weather.Run();
  auto fo = without.Run();
  auto mean_deviation = [](const std::vector<SimulatedFlight>& flights) {
    double sum = 0;
    int n = 0;
    for (const auto& f : flights) {
      for (size_t w = 1; w + 1 < f.plan.waypoints.size(); ++w) {
        const auto& wp = f.plan.waypoints[w];
        double best = 1e18;
        for (const Position& p : f.actual.points) {
          best = std::min(best, geom::HaversineM(p.lon, p.lat, wp.loc.lon,
                                                 wp.loc.lat));
        }
        sum += best;
        ++n;
      }
    }
    return sum / n;
  };
  EXPECT_GT(mean_deviation(fw), mean_deviation(fo));
}

TEST_F(FlightSimTest, ReportIntervalRespected) {
  FlightSimConfig config;
  config.flight_count = 3;
  config.report_interval_ms = 8000;
  auto flights = Simulate(config);
  for (const auto& f : flights) {
    for (size_t i = 1; i < f.actual.points.size(); ++i) {
      EXPECT_EQ(f.actual.points[i].t - f.actual.points[i - 1].t, 8000);
    }
  }
}

}  // namespace
}  // namespace tcmf::datagen
