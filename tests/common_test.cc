#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <random>

#include "common/csv.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"

namespace tcmf {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad speed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad speed");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad speed");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kParseError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    TCMF_RETURN_IF_ERROR(inner());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::IoError("disk");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// --------------------------------------------------------------- Strings

TEST(StringsTest, SplitBasic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  auto parts = StrSplit(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(StringsTest, SplitSingleToken) {
  auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\na b\r "), "a b");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StrStartsWith("POLYGON ((", "POLYGON"));
  EXPECT_FALSE(StrStartsWith("POLY", "POLYGON"));
  EXPECT_TRUE(StrEndsWith("file.csv", ".csv"));
  EXPECT_FALSE(StrEndsWith("csv", "file.csv"));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(StrToLower("PoLyGoN"), "polygon");
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2.25 ").value(), -2.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StringsTest, ParseIntValid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
}

TEST(StringsTest, ParseIntRejectsFloatsAndGarbage) {
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("x").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, ParseSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto fields = ParseCsvLine("a,\"b,c\",d");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
}

TEST(CsvTest, ParseDoubledQuote) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(CsvTest, EscapeRoundTrip) {
  std::string tricky = "a,\"b\"\nc";
  std::string escaped = CsvEscape(tricky);
  auto fields = ParseCsvLine(escaped);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], tricky);
}

TEST(CsvTest, WriterReaderRoundTrip) {
  std::string path = testing::TempDir() + "/tcmf_csv_test.csv";
  {
    CsvWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    writer.WriteRow({"id", "name"});
    writer.WriteRow({"1", "alpha, beta"});
    writer.WriteRow({"2", "plain"});
    ASSERT_TRUE(writer.Close().ok());
  }
  CsvReader reader;
  ASSERT_TRUE(reader.Open(path, /*has_header=*/true).ok());
  ASSERT_EQ(reader.header().size(), 2u);
  EXPECT_EQ(reader.header()[1], "name");
  std::vector<std::string> row;
  ASSERT_TRUE(reader.Next(&row));
  EXPECT_EQ(row[1], "alpha, beta");
  ASSERT_TRUE(reader.Next(&row));
  EXPECT_EQ(row[0], "2");
  EXPECT_FALSE(reader.Next(&row));
  EXPECT_EQ(reader.rows_read(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, OpenMissingFileFails) {
  CsvReader reader;
  EXPECT_EQ(reader.Open("/nonexistent/nope.csv").code(),
            StatusCode::kIoError);
}

// ----------------------------------------------------------------- Stats

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSinglePass) {
  Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Gaussian(10.0, 3.0);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(P2QuantileTest, ExactForSmallCounts) {
  P2Quantile q(0.5);
  q.Add(3.0);
  q.Add(1.0);
  q.Add(2.0);
  EXPECT_DOUBLE_EQ(q.Value(), 2.0);
}

TEST(P2QuantileTest, MedianConvergesOnUniform) {
  Rng rng(7);
  P2Quantile q(0.5);
  for (int i = 0; i < 20000; ++i) q.Add(rng.Uniform(0.0, 100.0));
  EXPECT_NEAR(q.Value(), 50.0, 3.0);
}

TEST(P2QuantileTest, NinetiethPercentileOnUniform) {
  Rng rng(11);
  P2Quantile q(0.9);
  for (int i = 0; i < 20000; ++i) q.Add(rng.Uniform(0.0, 100.0));
  EXPECT_NEAR(q.Value(), 90.0, 4.0);
}

TEST(P2QuantileTest, MedianOnGaussian) {
  Rng rng(13);
  P2Quantile q(0.5);
  for (int i = 0; i < 20000; ++i) q.Add(rng.Gaussian(42.0, 10.0));
  EXPECT_NEAR(q.Value(), 42.0, 1.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(HistogramTest, BucketEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalWeights) {
  Rng rng(19);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 9000; ++i) {
    ++counts[rng.Categorical({1.0, 2.0, 6.0})];
  }
  EXPECT_NEAR(counts[0] / 9000.0, 1.0 / 9, 0.02);
  EXPECT_NEAR(counts[2] / 9000.0, 6.0 / 9, 0.02);
}

// ------------------------------------------------------------------ Hash

TEST(HashTest, Mix64IsDeterministicAndNonTrivial) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(0), 0u);      // identity hash would return 0
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(1), 1u);
}

TEST(HashTest, Mix64SpreadsStridePatternedKeys) {
  // The failure mode that motivated the mixer: keys stepping by a
  // multiple of the bucket count (vessel MMSIs are assigned in blocks)
  // all satisfy key % n == const, so an identity hash lands every one
  // of them in a single bucket. The mixer must spread them close to
  // uniformly for every bucket count we shard by.
  for (const size_t buckets : {4u, 16u, 64u}) {
    for (const uint64_t stride :
         {uint64_t{buckets}, uint64_t{4 * buckets}, uint64_t{1000}}) {
      std::vector<size_t> load(buckets, 0);
      const size_t keys = 16384;
      for (size_t i = 0; i < keys; ++i) {
        ++load[HashPartition(200000000 + i * stride, buckets)];
      }
      const double mean = static_cast<double>(keys) / buckets;
      for (size_t b = 0; b < buckets; ++b) {
        EXPECT_GT(load[b], mean / 2) << "buckets=" << buckets
                                     << " stride=" << stride << " b=" << b;
        EXPECT_LT(load[b], mean * 2) << "buckets=" << buckets
                                     << " stride=" << stride << " b=" << b;
      }
    }
  }
}

TEST(RngTest, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The fork and parent should produce different streams.
  bool differ = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Uniform(0, 1) != child.Uniform(0, 1)) differ = true;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace tcmf
